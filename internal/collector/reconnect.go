package collector

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mburst/internal/ptrace"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// Dialer opens a transport to the collector service. net.Dial wrapped in a
// closure is the production implementation; tests inject failures.
type Dialer func() (io.WriteCloser, error)

// ReconnectingClientConfig tunes a ReconnectingClient.
type ReconnectingClientConfig struct {
	// Rack tags outgoing batches.
	Rack uint32
	// Epoch is the agent's restart generation, stamped on outgoing batches
	// so the collector's EpochGate can discard superseded streams. Epoch 0
	// (never restarted) keeps the legacy MBW1 framing.
	Epoch uint32
	// MaxBatch is the flush threshold (default DefaultBatchSize).
	MaxBatch int
	// Format selects the wire format written to the collector; the zero
	// value is wire.DefaultFormat. Each redial opens a fresh stream (and
	// a fresh codec), so a reconnect never leaves the collector chained
	// to stale delta state.
	Format wire.Format
	// BufferLimit bounds samples retained while the collector is
	// unreachable (default 1 << 20). Beyond it the oldest samples are
	// dropped — the switch must never block its sampling loop on the
	// network, and DroppedSamples accounts for the loss.
	BufferLimit int
	// SpoolLimit bounds the retransmit spool in samples (default
	// BufferLimit). Batches that fail to send — and samples sealed during
	// an outage — wait in the spool and are replayed in order, each under
	// the epoch it was sealed with, before any newer traffic. Beyond the
	// limit the oldest spooled batches are dropped with exact accounting
	// (DroppedSamples and the SpoolDrops counter).
	SpoolLimit int
	// RetryBackoff is the initial reconnect delay (default 50 ms),
	// doubling per failure up to MaxBackoff (default 5 s).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// Rand, when non-nil, applies full jitter to reconnect delays: each
	// sleep is uniform in [0, backoff) while the doubling cap schedule is
	// unchanged. A rack of agents losing its collector redials spread out
	// instead of in lockstep, and seeded sources keep the pattern
	// reproducible. The source is used only by the flusher goroutine.
	Rand *rng.Source
	// Sleep is injectable for tests (default time.Sleep). It also paces
	// the CloseTimeout deadline.
	Sleep func(time.Duration)
	// CloseTimeout bounds how long Close waits for the final flush. Zero
	// waits indefinitely (the historical behavior). On expiry, samples
	// still pending are accounted as dropped and Close returns an error.
	CloseTimeout time.Duration
	// Metrics, when non-nil, receives transport telemetry (delivered,
	// dropped, redials, backoff state, pending depth).
	Metrics *ClientMetrics
	// Tracer, when non-nil, records client-side spans for every delivered
	// batch; reconnect waits taken while the batch was pending appear as
	// client.backoff children of its client.send span.
	Tracer *ptrace.Tracer
}

func (c *ReconnectingClientConfig) applyDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultBatchSize
	}
	if c.BufferLimit <= 0 {
		c.BufferLimit = 1 << 20
	}
	if c.SpoolLimit <= 0 {
		c.SpoolLimit = c.BufferLimit
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
}

// ReconnectingClient is a collection agent's transport: it batches samples
// like Client, but survives collector restarts by buffering during
// outages and redialing with exponential backoff. Unlike Client it is
// safe for concurrent Emit/Close (the flusher runs on its own goroutine).
type ReconnectingClient struct {
	cfg  ReconnectingClientConfig
	dial Dialer

	mu      sync.Mutex
	pending []wire.Sample
	// spool holds sealed batches awaiting retransmission, oldest first.
	// Each remembers the epoch it was sealed under, so an epoch bump never
	// re-stamps traffic sampled in an earlier generation. spooled is the
	// total sample count across the spool.
	spool   []spoolBatch
	spooled int
	closed  bool
	wake    chan struct{}
	done    chan struct{}

	dropped   uint64
	delivered uint64
	redials   uint64

	// m holds nil-safe instruments; the zero value disables telemetry.
	m ClientMetrics
}

// NewReconnectingClient starts the background flusher. It panics on an
// unknown cfg.Format (a static misconfiguration, like a nil dialer).
func NewReconnectingClient(dial Dialer, cfg ReconnectingClientConfig) *ReconnectingClient {
	if dial == nil {
		panic("collector: nil dialer")
	}
	if cfg.Format != 0 {
		if _, err := wire.NewCodec(cfg.Format); err != nil {
			panic(fmt.Sprintf("collector: %v", err))
		}
	}
	if cfg.Format == wire.FormatMBW1 && cfg.Epoch != 0 {
		// Would make every flush fail (and retry) forever.
		panic("collector: mbw1 cannot carry a restart epoch; use mbw2 or mbw3")
	}
	cfg.applyDefaults()
	c := &ReconnectingClient{
		cfg:  cfg,
		dial: dial,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if cfg.Metrics != nil {
		c.m = *cfg.Metrics
	}
	go c.flushLoop()
	return c
}

// Emit implements Emitter. It never blocks on the network: samples are
// buffered and the flusher notified; when the buffer limit is exceeded the
// oldest samples are discarded.
func (c *ReconnectingClient) Emit(s wire.Sample) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.pending = append(c.pending, s)
	if over := len(c.pending) - c.cfg.BufferLimit; over > 0 {
		c.pending = c.pending[over:]
		c.dropped += uint64(over)
		c.m.Dropped.Add(uint64(over))
	}
	c.m.Pending.Set(float64(len(c.pending)))
	notify := len(c.pending) >= c.cfg.MaxBatch
	c.mu.Unlock()
	if notify {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// spoolBatch is one sealed, undelivered batch in the retransmit spool.
type spoolBatch struct {
	epoch   uint32
	samples []wire.Sample
}

// SetEpoch advances the agent's restart generation for subsequently
// sealed batches. Samples already buffered are sealed into the spool
// first, under the old epoch — a sample is always delivered with the
// generation it was sampled in, even across a soft restart. Panics if
// the configured format is MBW1 and epoch is non-zero (MBW1 cannot
// carry an epoch; every flush would fail forever).
func (c *ReconnectingClient) SetEpoch(epoch uint32) {
	if c.cfg.Format == wire.FormatMBW1 && epoch != 0 {
		panic("collector: mbw1 cannot carry a restart epoch; use mbw2 or mbw3")
	}
	c.mu.Lock()
	c.sealPendingLocked(true)
	c.cfg.Epoch = epoch
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// sealPendingLocked moves buffered samples into the spool as sealed
// batches under the current epoch: full MaxBatch chunks always, plus the
// final partial chunk when all is set (epoch bump — nothing may remain
// behind under the old generation). Caller holds c.mu.
func (c *ReconnectingClient) sealPendingLocked(all bool) {
	for len(c.pending) >= c.cfg.MaxBatch || (all && len(c.pending) > 0) {
		n := len(c.pending)
		if n > c.cfg.MaxBatch {
			n = c.cfg.MaxBatch
		}
		batch := make([]wire.Sample, n)
		copy(batch, c.pending[:n])
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
		c.spoolPushLocked(spoolBatch{epoch: c.cfg.Epoch, samples: batch})
	}
	c.m.Pending.Set(float64(len(c.pending)))
}

//lint:hotpath spool enqueue on the flush path; amortized slice growth only
func (c *ReconnectingClient) spoolPushLocked(sb spoolBatch) {
	c.spool = append(c.spool, sb)
	c.spooled += len(sb.samples)
	// Bounded spool: shed the oldest sealed batches first, with exact
	// accounting — backpressure must never block the sampling loop.
	for c.spooled > c.cfg.SpoolLimit && len(c.spool) > 0 {
		n := uint64(len(c.spool[0].samples))
		c.spool[0].samples = nil
		c.spool = c.spool[1:]
		c.spooled -= int(n)
		c.dropped += n
		c.m.Dropped.Add(n)
		c.m.SpoolDrops.Add(n)
	}
	c.m.Spooled.Set(float64(c.spooled))
}

// takeSpool pops the oldest spooled batch for retransmission.
func (c *ReconnectingClient) takeSpool() (spoolBatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spool) == 0 {
		return spoolBatch{}, false
	}
	sb := c.spool[0]
	c.spool[0].samples = nil
	c.spool = c.spool[1:]
	c.spooled -= len(sb.samples)
	c.m.Spooled.Set(float64(c.spooled))
	return sb, true
}

// unshiftSpool returns a batch whose write failed to the spool's front,
// keeping replay order intact across a redial mid-replay.
func (c *ReconnectingClient) unshiftSpool(sb spoolBatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spool = append([]spoolBatch{sb}, c.spool...)
	c.spooled += len(sb.samples)
	c.m.Spooled.Set(float64(c.spooled))
}

// dropAllLocked accounts everything buffered and spooled as dropped —
// the shutdown-with-unreachable-collector path. Caller holds c.mu.
func (c *ReconnectingClient) dropAllLocked() uint64 {
	n := uint64(len(c.pending)) + uint64(c.spooled)
	c.dropped += n
	c.pending = nil
	c.spool = nil
	c.spooled = 0
	return n
}

// SpooledSamples returns how many samples wait in the retransmit spool.
func (c *ReconnectingClient) SpooledSamples() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint64(c.spooled)
}

// DroppedSamples returns how many samples were discarded during outages.
func (c *ReconnectingClient) DroppedSamples() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// DeliveredSamples returns how many samples were written to a transport.
func (c *ReconnectingClient) DeliveredSamples() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Redials returns how many times the client re-established the transport.
func (c *ReconnectingClient) Redials() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Close flushes best-effort and stops the flusher. With a CloseTimeout
// configured, the final flush is bounded: if the flusher has not drained
// within the deadline (collector down, backoff in progress), Close
// accounts the undelivered samples as dropped and returns an error rather
// than hanging agent shutdown on an unreachable collector.
func (c *ReconnectingClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	timeout := c.cfg.CloseTimeout
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	if timeout <= 0 {
		<-c.done
		return nil
	}
	expired := make(chan struct{})
	go func() {
		c.cfg.Sleep(timeout)
		close(expired)
	}()
	select {
	case <-c.done:
		return nil
	case <-expired:
	}
	// Deadline hit: drop what is still pending or spooled so accounting
	// stays exact. A batch already taken by the flusher is in neither; it
	// either delivers (counted delivered) or is re-spooled and dropped by
	// the flusher's closed-with-unreachable-collector path — never both.
	c.mu.Lock()
	n := c.dropAllLocked()
	c.mu.Unlock()
	c.m.Dropped.Add(n)
	c.m.Pending.Set(0)
	c.m.Spooled.Set(0)
	return fmt.Errorf("collector: close timed out after %v with %d samples undelivered", timeout, n)
}

// takeBatch removes up to MaxBatch pending samples, sealing them under
// the current epoch (read under the lock — SetEpoch may race).
func (c *ReconnectingClient) takeBatch() ([]wire.Sample, uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.pending)
	if n == 0 {
		return nil, c.cfg.Epoch
	}
	if n > c.cfg.MaxBatch {
		n = c.cfg.MaxBatch
	}
	out := make([]wire.Sample, n)
	copy(out, c.pending[:n])
	c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	c.m.Pending.Set(float64(len(c.pending)))
	return out, c.cfg.Epoch
}

func (c *ReconnectingClient) flushLoop() {
	defer close(c.done)
	var (
		conn    io.WriteCloser
		cw      countingWriter
		w       *wire.Writer
		backoff = c.cfg.RetryBackoff
		// waits accumulates reconnect sleeps taken since the last delivery,
		// attributed to the next delivered batch as client.backoff spans.
		waits []simclock.Duration
	)
	closeConn := func() {
		if conn != nil {
			conn.Close()
			conn, w = nil, nil
		}
	}
	defer closeConn()

	for {
		c.mu.Lock()
		empty := len(c.pending) == 0 && len(c.spool) == 0
		closed := c.closed
		c.mu.Unlock()
		if empty {
			if closed {
				return
			}
			<-c.wake
			continue
		}
		if conn == nil {
			nc, err := c.dial()
			if err != nil {
				if closed {
					// Shutting down with an unreachable collector:
					// account the remainder as dropped and exit.
					c.mu.Lock()
					n := c.dropAllLocked()
					c.mu.Unlock()
					c.m.Dropped.Add(n)
					c.m.Pending.Set(0)
					c.m.Spooled.Set(0)
					return
				}
				// The collector is down: seal full batches into the bounded
				// spool (under the current epoch) so outage loss is decided by
				// the spool's exact shedding, then back off.
				c.mu.Lock()
				c.sealPendingLocked(false)
				c.mu.Unlock()
				// Full jitter: sleep uniform in [0, backoff) while the
				// doubling schedule caps unchanged; the gauge reports the
				// sleep actually taken.
				sleep := backoff
				if c.cfg.Rand != nil {
					sleep = time.Duration(c.cfg.Rand.Float64() * float64(backoff))
				}
				c.m.Backoff.Set(sleep.Seconds())
				c.cfg.Sleep(sleep)
				waits = append(waits, simclock.FromStd(sleep))
				backoff *= 2
				if backoff > c.cfg.MaxBackoff {
					backoff = c.cfg.MaxBackoff
				}
				continue
			}
			conn = nc
			cw = countingWriter{w: nc}
			w, err = wire.NewWriterFormat(&cw, c.cfg.Format)
			if err != nil {
				panic(err) // unreachable: the format was vetted at construction
			}
			c.mu.Lock()
			c.redials++
			c.mu.Unlock()
			c.m.Redials.Inc()
			c.m.Backoff.Set(0)
			backoff = c.cfg.RetryBackoff
		}
		// Replay the spool first: sealed batches precede anything newer,
		// each under the epoch it was sealed with.
		wb := wire.Batch{Rack: c.cfg.Rack}
		var fromSpool bool
		var spooled spoolBatch
		if sb, ok := c.takeSpool(); ok {
			fromSpool, spooled = true, sb
			wb.Epoch, wb.Samples = sb.epoch, sb.samples
		} else {
			batch, epoch := c.takeBatch()
			if batch == nil {
				continue
			}
			wb.Epoch, wb.Samples = epoch, batch
		}
		before := cw.n
		err := w.WriteBatch(&wb)
		c.m.Bytes.Add(cw.n - before)
		if err != nil {
			c.m.FlushErrors.Inc()
			closeConn()
			if fromSpool {
				// Mid-replay redial: back to the front, order intact.
				c.unshiftSpool(spooled)
			} else {
				c.mu.Lock()
				c.spoolPushLocked(spoolBatch{epoch: wb.Epoch, samples: wb.Samples})
				c.mu.Unlock()
			}
			continue
		}
		recordSendSpans(c.cfg.Tracer, &wb, waits)
		waits = nil
		c.mu.Lock()
		c.delivered += uint64(len(wb.Samples))
		c.mu.Unlock()
		c.m.Batches.Inc()
		c.m.Delivered.Add(uint64(len(wb.Samples)))
	}
}

// String summarizes delivery accounting for diagnostics.
func (c *ReconnectingClient) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("reconnecting client: delivered=%d dropped=%d redials=%d pending=%d spooled=%d",
		c.delivered, c.dropped, c.redials, len(c.pending), c.spooled)
}
