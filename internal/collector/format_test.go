package collector

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"mburst/internal/wire"
)

// TestClientFormatsEndToEnd ships the same samples through a client of
// every wire format to a live server; the sink must receive them exactly
// regardless of format — the server negotiates per batch magic.
func TestClientFormatsEndToEnd(t *testing.T) {
	for _, f := range []wire.Format{0, wire.FormatMBW1, wire.FormatMBW2, wire.FormatMBW3} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		sink := &MemSink{}
		srv := Serve(ln, sink.Handle)
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClientConfigured(conn, ClientConfig{Rack: 9, MaxBatch: 16, Format: f})
		if err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		const n = 100
		for i := 0; i < n; i++ {
			c.Emit(mkSample(i))
		}
		if err := c.Close(); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(sink.Samples()) < n {
			if time.Now().After(deadline) {
				t.Fatalf("format %v: received %d/%d samples", f, len(sink.Samples()), n)
			}
			time.Sleep(time.Millisecond)
		}
		for i, s := range sink.Samples() {
			if s != mkSample(i) {
				t.Fatalf("format %v: sample %d corrupted in transit: %+v", f, i, s)
			}
		}
		if err := srv.LastErr(); err != nil {
			t.Errorf("format %v: server error: %v", f, err)
		}
		srv.Close()
	}
	if _, err := NewClientConfigured(io.Discard, ClientConfig{Format: wire.Format(42)}); err == nil {
		t.Error("NewClientConfigured accepted format 42")
	}
}

// flakyConn fails its nth write, simulating a transport that dies
// mid-stream so the reconnecting client must redial.
type flakyConn struct {
	io.WriteCloser
	writes  int
	failAt  int
	tripped bool
}

func (f *flakyConn) Write(p []byte) (int, error) {
	f.writes++
	if f.writes == f.failAt {
		f.tripped = true
		f.WriteCloser.Close()
		return 0, errors.New("injected transport failure")
	}
	return f.WriteCloser.Write(p)
}

// TestReconnectingClientMBW3Redial kills the transport mid-stream: the
// client must redial with a fresh MBW3 codec, and the server — seeing a
// fresh connection — must decode the continued stream exactly. This is
// the delta-chain reset contract under reconnection.
func TestReconnectingClientMBW3Redial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &MemSink{}
	srv := Serve(ln, sink.Handle)
	defer srv.Close()

	dials := 0
	dial := func() (io.WriteCloser, error) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			// First transport dies on its third batch write.
			return &flakyConn{WriteCloser: conn, failAt: 3}, nil
		}
		return conn, nil
	}
	c := NewReconnectingClient(dial, ReconnectingClientConfig{
		Rack:         4,
		Epoch:        2,
		MaxBatch:     8,
		Format:       wire.FormatMBW3,
		RetryBackoff: time.Millisecond,
	})
	const n = 64
	for i := 0; i < n; i++ {
		c.Emit(mkSample(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Samples()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d samples (dials=%d, dropped=%d)",
				len(sink.Samples()), n, dials, c.DroppedSamples())
		}
		time.Sleep(time.Millisecond)
	}
	if dials < 2 {
		t.Fatalf("transport failure did not force a redial (dials=%d)", dials)
	}
	// The two connections' tails may drain in either order; verify the
	// delivered multiset instead of global order.
	seen := make(map[wire.Sample]int, n)
	for _, s := range sink.Samples() {
		seen[s]++
	}
	for i := 0; i < n; i++ {
		if seen[mkSample(i)] != 1 {
			t.Fatalf("sample %d delivered %d times across the redial", i, seen[mkSample(i)])
		}
	}
	if err := srv.LastErr(); err != nil {
		t.Errorf("server error: %v", err)
	}
}

func TestReconnectingClientRejectsBadFormat(t *testing.T) {
	dial := func() (io.WriteCloser, error) { return nil, errors.New("unused") }
	mustPanic := func(name string, cfg ReconnectingClientConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		NewReconnectingClient(dial, cfg)
	}
	mustPanic("unknown format", ReconnectingClientConfig{Format: wire.Format(42)})
	mustPanic("mbw1 with epoch", ReconnectingClientConfig{Format: wire.FormatMBW1, Epoch: 3})
}
