package collector

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

// CalibrationResult is the outcome of a sampling-interval calibration.
type CalibrationResult struct {
	// Interval is the recommended minimum sampling interval.
	Interval simclock.Duration
	// MissRate is the predicted miss rate at that interval.
	MissRate float64
	// BaseCost is the interference-free cost of one poll.
	BaseCost simclock.Duration
}

// Calibrate finds the minimum sampling interval for a counter set that
// keeps the predicted miss rate at or below targetLoss — automating what
// §4.1 did by hand ("we manually determine the minimum sampling interval
// possible while maintaining ∼1% sampling loss"). The prediction runs the
// poller's own cost model (jitter plus interrupt interference) over many
// simulated polls, so it matches what a live Poller will measure.
//
// The search walks a 1 µs grid from the base cost upward, which keeps the
// result stable and explainable; counters that can never meet the target
// within maxInterval return an error.
func Calibrate(cfg PollerConfig, sw *asic.Switch, targetLoss float64, maxInterval simclock.Duration, seed uint64) (CalibrationResult, error) {
	if targetLoss <= 0 || targetLoss >= 1 {
		return CalibrationResult{}, fmt.Errorf("collector: targetLoss %v out of (0,1)", targetLoss)
	}
	if maxInterval <= 0 {
		maxInterval = simclock.Millisecond
	}
	// The local simulation below draws from the same cost model a live
	// poller would, so the defaulted interference parameters must be
	// filled in here, not just inside NewPoller's private copy.
	cfg.applyDefaults()
	cfg.Interval = maxInterval // placeholder to pass validation
	probe, err := NewPoller(cfg, sw, rng.New(seed), EmitterFunc(func(wire.Sample) {}))
	if err != nil {
		return CalibrationResult{}, err
	}
	res := CalibrationResult{BaseCost: probe.BaseCost()}

	// Predicted miss rate at an interval: draw poll costs from the cost
	// model and replay the scheduling rule (next poll at the first
	// boundary after completion).
	const polls = 20000
	missRateAt := func(interval simclock.Duration) float64 {
		src := rng.New(seed ^ uint64(interval))
		sim := &Poller{cfg: cfg, src: src}
		sim.cfg.Interval = interval
		sim.baseCost = res.BaseCost
		var missed, taken uint64
		for i := 0; i < polls; i++ {
			cost := sim.pollCost(simclock.Epoch)
			overrun := int64(cost) / int64(interval)
			missed += uint64(overrun)
			taken++
		}
		return float64(missed) / float64(missed+taken)
	}

	start := res.BaseCost.Truncate(simclock.Microsecond)
	if start < simclock.Microsecond {
		start = simclock.Microsecond
	}
	for interval := start; interval <= maxInterval; interval += simclock.Microsecond {
		if rate := missRateAt(interval); rate <= targetLoss {
			res.Interval = interval
			res.MissRate = rate
			return res, nil
		}
	}
	return res, fmt.Errorf("collector: no interval ≤ %v meets loss target %v (base cost %v)",
		maxInterval, targetLoss, res.BaseCost)
}
