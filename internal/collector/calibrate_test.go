package collector

import (
	"testing"

	"mburst/internal/asic"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/wire"
)

func TestCalibrateByteCounterMatchesPaper(t *testing.T) {
	sw := testSwitch()
	cfg := PollerConfig{
		Counters:      []CounterSpec{byteSpec(0)},
		DedicatedCore: true,
	}
	res, err := Calibrate(cfg, sw, 0.01, simclock.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: the byte counter's minimum interval at ~1% loss is 25µs.
	if res.Interval < simclock.Micros(18) || res.Interval > simclock.Micros(35) {
		t.Errorf("calibrated interval = %v, want ≈25µs", res.Interval)
	}
	if res.MissRate > 0.01 {
		t.Errorf("predicted miss rate %v exceeds target", res.MissRate)
	}
}

func TestCalibrateBufferPeakSlower(t *testing.T) {
	sw := testSwitch()
	bytes, err := Calibrate(PollerConfig{
		Counters: []CounterSpec{byteSpec(0)}, DedicatedCore: true,
	}, sw, 0.01, simclock.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	buffer, err := Calibrate(PollerConfig{
		Counters: []CounterSpec{{Kind: asic.KindBufferPeak}}, DedicatedCore: true,
	}, sw, 0.01, simclock.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: the buffer register "takes much longer to poll" (50µs).
	if buffer.Interval <= bytes.Interval {
		t.Errorf("buffer interval %v should exceed byte interval %v", buffer.Interval, bytes.Interval)
	}
	if buffer.Interval < simclock.Micros(40) || buffer.Interval > simclock.Micros(70) {
		t.Errorf("buffer calibrated to %v, want ≈50µs", buffer.Interval)
	}
}

func TestCalibratePredictionMatchesLivePoller(t *testing.T) {
	// The calibration's predicted miss rate at its chosen interval must
	// match what a live poller actually measures.
	sw := testSwitch()
	cfg := PollerConfig{Counters: []CounterSpec{byteSpec(0)}, DedicatedCore: true}
	res, err := Calibrate(cfg, sw, 0.02, simclock.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Interval = res.Interval
	p, err := NewPoller(cfg, sw, rng.New(99), EmitterFunc(func(wire.Sample) {}))
	if err != nil {
		t.Fatal(err)
	}
	sched := eventq.NewScheduler()
	p.Install(sched)
	sched.RunUntil(simclock.Epoch.Add(simclock.Seconds(2)))
	live := p.MissRate()
	if live > 3*res.MissRate+0.01 {
		t.Errorf("live miss rate %v far above predicted %v", live, res.MissRate)
	}
}

func TestCalibrateGuards(t *testing.T) {
	sw := testSwitch()
	cfg := PollerConfig{Counters: []CounterSpec{byteSpec(0)}, DedicatedCore: true}
	if _, err := Calibrate(cfg, sw, 0, simclock.Millisecond, 1); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Calibrate(cfg, sw, 1, simclock.Millisecond, 1); err == nil {
		t.Error("target 1 accepted")
	}
	// An impossible target within a tiny max interval errors out.
	if _, err := Calibrate(cfg, sw, 0.0001, simclock.Micros(8), 1); err == nil {
		t.Error("unreachable target accepted")
	}
}
