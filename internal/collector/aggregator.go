package collector

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"mburst/internal/shard"
)

// This file is the fleet half of the sharded collection plane: the
// Aggregator receives shard-local accumulator snapshots (ShardUpdate)
// over a bounded fan-in queue and folds them into the fleet-wide view
// with the exact merge operations in merge.go.
//
// The queue discipline leans on a property of the updates themselves:
// a ShardUpdate is a *cumulative* state cut, not a delta. The
// aggregator only ever keeps the newest update per shard, so dropping
// an intermediate update under back pressure loses freshness, never
// data — the fleet state is exact as long as each shard's final update
// arrives, which is why Offer (lossy, counted) is the steady-state path
// and Deliver (blocking, counted) is reserved for cuts that must land.

// ShardUpdate is one shard's published accumulator state.
type ShardUpdate struct {
	// Shard is the publishing shard's placement index.
	Shard int `json:"shard"`
	// Seq orders a shard's updates; the aggregator keeps the highest.
	// A restarted shard begins again at 1, which supersedes the seed
	// state (Seq 0) an aggregator restored from a fleet checkpoint.
	Seq uint64 `json:"seq"`
	// Figures is the shard's live-figures accumulator state.
	Figures FiguresState `json:"figures"`
	// Ingest is the shard's ingest accounting.
	Ingest Snapshot `json:"ingest"`
}

// FleetState is the merged fleet-wide view: the union of the newest
// update from every shard.
type FleetState struct {
	// Shards is how many placement shards the fleet has.
	Shards int `json:"shards"`
	// Reporting is how many shards have published at least one update.
	Reporting int `json:"reporting"`
	// Seqs records the merged update sequence per shard (0 = none yet).
	Seqs []uint64 `json:"seqs"`
	// Figures is the fleet-wide figures state (disjoint series union).
	Figures FiguresState `json:"figures"`
	// Ingest is the fleet-wide ingest accounting (summed).
	Ingest Snapshot `json:"ingest"`
}

// AggregatorConfig assembles an Aggregator.
type AggregatorConfig struct {
	// Shards is the fleet's shard count; required.
	Shards int
	// QueueDepth bounds the fan-in queue; <= 0 selects 4×Shards. A full
	// queue makes Offer drop (counted) and Deliver block (counted as a
	// deferral).
	QueueDepth int
	// Figures parameterizes FleetFigures' rendered snapshot; it must
	// match the shard-local LiveFiguresConfig for the fleet render to be
	// bit-identical to a single collector's. The zero value disables
	// rendering (FleetFigures errors); FleetState works regardless.
	Figures LiveFiguresConfig
	// Metrics receives fan-in and merge telemetry; may be nil.
	Metrics *AggregatorMetrics
	// Now, when non-nil, timestamps merges so Metrics.MergeLatency is
	// populated (the aggregator never reads the wall clock on its own).
	Now func() time.Time
}

// Aggregator is the fleet-wide merge tier: a bounded fan-in queue, a
// single drain goroutine applying updates newest-wins, and on-demand
// exact merges of the retained per-shard states.
type Aggregator struct {
	cfg AggregatorConfig
	m   AggregatorMetrics

	queue chan queued
	done  chan struct{}

	mu     sync.Mutex
	latest []ShardUpdate
	have   []bool

	// applyHook, when non-nil, observes every update entering apply —
	// a test seam for stalling the drain goroutine deterministically.
	applyHook func(ShardUpdate)
}

// queued is one fan-in queue entry: an update, or a flush sentinel
// (ack non-nil) that the drain goroutine acknowledges in FIFO order.
type queued struct {
	u   ShardUpdate
	ack chan<- struct{}
}

// NewAggregator validates cfg, starts the drain goroutine and returns
// the aggregator. Close releases it.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("collector: aggregator needs a positive shard count, got %d", cfg.Shards)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * cfg.Shards
	}
	a := &Aggregator{
		cfg:    cfg,
		queue:  make(chan queued, depth),
		done:   make(chan struct{}),
		latest: make([]ShardUpdate, cfg.Shards),
		have:   make([]bool, cfg.Shards),
	}
	if cfg.Metrics != nil {
		a.m = *cfg.Metrics
	}
	go a.drain()
	return a, nil
}

// Offer enqueues an update without blocking. When the queue is full the
// update is dropped and counted; the caller keeps polling/publishing
// and a newer cumulative update will carry the same data later. Returns
// whether the update was accepted. Must not be called after Close.
func (a *Aggregator) Offer(u ShardUpdate) bool {
	select {
	case a.queue <- queued{u: u}:
		a.m.Enqueued.Inc()
		a.m.QueueDepth.Set(float64(len(a.queue)))
		return true
	default:
		a.m.Dropped.Inc()
		return false
	}
}

// Deliver enqueues an update, blocking until the queue accepts it — the
// must-land path for final cuts. A full queue counts one deferral
// before the wait. Must not be called after Close.
func (a *Aggregator) Deliver(u ShardUpdate) {
	q := queued{u: u}
	select {
	case a.queue <- q:
	default:
		a.m.Deferred.Inc()
		a.queue <- q
	}
	a.m.Enqueued.Inc()
	a.m.QueueDepth.Set(float64(len(a.queue)))
}

// drain applies queued updates until Close.
func (a *Aggregator) drain() {
	defer close(a.done)
	for q := range a.queue {
		if q.ack != nil {
			close(q.ack)
			continue
		}
		if hook := a.hook(); hook != nil {
			hook(q.u)
		}
		a.apply(q.u)
		a.m.QueueDepth.Set(float64(len(a.queue)))
	}
}

// apply folds one update into the retained per-shard state: newest Seq
// wins, older ones count as stale, out-of-range shard indexes count as
// rejected.
//
//lint:hotpath per-snapshot merge on the fan-in drain; stores a state cut and bumps counters, no allocation
func (a *Aggregator) apply(u ShardUpdate) {
	if u.Shard < 0 || u.Shard >= len(a.latest) {
		a.m.Rejected.Inc()
		return
	}
	a.mu.Lock()
	if a.have[u.Shard] && u.Seq <= a.latest[u.Shard].Seq {
		a.mu.Unlock()
		a.m.Stale.Inc()
		return
	}
	a.latest[u.Shard] = u
	a.have[u.Shard] = true
	a.mu.Unlock()
	a.m.Applied.Inc()
}

// Flush blocks until every update enqueued before the call has been
// applied: a flush sentinel rides the FIFO queue behind them and the
// drain goroutine acknowledges it. Must not be called after Close.
func (a *Aggregator) Flush() {
	ack := make(chan struct{})
	a.queue <- queued{ack: ack}
	<-ack
}

// hook reads the drain-side observation hook. Test seam; see applyHook.
func (a *Aggregator) hook() func(ShardUpdate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applyHook
}

// setHook installs the drain-side observation hook. Test seam.
func (a *Aggregator) setHook(fn func(ShardUpdate)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.applyHook = fn
}

// Close stops the drain goroutine after the queue empties. Producers
// must have stopped calling Offer/Deliver first.
func (a *Aggregator) Close() {
	close(a.queue)
	<-a.done
}

// FleetState merges the newest retained update from every shard into
// the fleet-wide state. The merge is exact: series union is disjoint
// under a valid placement (a duplicate series is returned as an error),
// ingest totals sum, and the per-shard Seqs record exactly which cuts
// the state reflects.
func (a *Aggregator) FleetState() (FleetState, error) {
	start := a.mark()
	a.mu.Lock()
	st := FleetState{Shards: len(a.latest), Seqs: make([]uint64, len(a.latest))}
	figs := make([]FiguresState, 0, len(a.latest))
	snaps := make([]Snapshot, 0, len(a.latest))
	for i := range a.latest {
		if !a.have[i] {
			continue
		}
		st.Reporting++
		st.Seqs[i] = a.latest[i].Seq
		figs = append(figs, a.latest[i].Figures)
		snaps = append(snaps, a.latest[i].Ingest)
	}
	a.mu.Unlock()
	var err error
	st.Figures, err = MergeFiguresStates(figs...)
	if err != nil {
		return FleetState{}, err
	}
	st.Ingest = MergeSnapshots(snaps...)
	a.m.Merges.Inc()
	a.observeSince(start)
	return st, nil
}

// FleetFigures renders the merged fleet state through a LiveFigures
// configured like the shards' — the fleet-wide Fig 3/4/6/9 snapshot,
// bit-identical to a single collector that ingested every batch.
func (a *Aggregator) FleetFigures() (FiguresSnapshot, error) {
	st, err := a.FleetState()
	if err != nil {
		return FiguresSnapshot{}, err
	}
	lf, err := NewLiveFigures(a.cfg.Figures)
	if err != nil {
		return FiguresSnapshot{}, fmt.Errorf("collector: fleet render needs the shard figures config: %w", err)
	}
	lf.RestoreState(st.Figures)
	return lf.Snapshot(), nil
}

// Restore seeds the retained per-shard states from a fleet checkpoint,
// as Seq-0 cuts that any live shard update supersedes. Call before
// traffic, typically right after NewAggregator when resuming a fleet.
func (a *Aggregator) Restore(st FleetCheckpointState) error {
	if len(st.Shards) != len(a.latest) {
		return fmt.Errorf("collector: fleet checkpoint has %d shards, aggregator %d",
			len(st.Shards), len(a.latest))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sc := range st.Shards {
		if sc.Shard < 0 || sc.Shard >= len(a.latest) {
			return fmt.Errorf("collector: fleet checkpoint shard %d out of range", sc.Shard)
		}
		u := ShardUpdate{Shard: sc.Shard, Seq: 0}
		if sc.State.Figures != nil {
			u.Figures = *sc.State.Figures
		}
		if sc.State.Ingest != nil {
			u.Ingest = *sc.State.Ingest
		}
		a.latest[sc.Shard] = u
		a.have[sc.Shard] = true
	}
	return nil
}

// mark reads the configured clock, if any.
func (a *Aggregator) mark() time.Time {
	if a.cfg.Now == nil {
		return time.Time{}
	}
	return a.cfg.Now()
}

// observeSince records merge latency when a clock is configured.
func (a *Aggregator) observeSince(start time.Time) {
	if a.cfg.Now == nil {
		return
	}
	a.m.MergeLatency.Observe(float64(a.cfg.Now().Sub(start).Microseconds()))
}

// ShardCheckpoint is one shard's contribution to a fleet checkpoint.
type ShardCheckpoint struct {
	// Shard is the placement index; Name the placement name, recorded so
	// a checkpoint survives placement-generation changes legibly.
	Shard int             `json:"shard"`
	Name  string          `json:"name,omitempty"`
	State CheckpointState `json:"state"`
}

// FleetCheckpointState is the fleet-wide checkpoint: the placement that
// produced it plus every shard's checkpoint, composed rather than
// re-cut — the fleet checkpoint is exactly the union of shard
// checkpoints, the same way the fleet state is the union of shard
// states.
type FleetCheckpointState struct {
	Placement shard.Placement   `json:"placement"`
	Shards    []ShardCheckpoint `json:"shards"`
}

// ComposeFleetCheckpoint assembles a fleet checkpoint from per-shard
// checkpoint states, one per placement shard in index order.
func ComposeFleetCheckpoint(pl shard.Placement, states []CheckpointState) (FleetCheckpointState, error) {
	if err := pl.Validate(); err != nil {
		return FleetCheckpointState{}, err
	}
	if len(states) != pl.NumShards() {
		return FleetCheckpointState{}, fmt.Errorf(
			"collector: composing fleet checkpoint: %d shard states for %d placement shards",
			len(states), pl.NumShards())
	}
	st := FleetCheckpointState{Placement: pl, Shards: make([]ShardCheckpoint, len(states))}
	for i, s := range states {
		st.Shards[i] = ShardCheckpoint{Shard: i, Name: pl.Name(i), State: s}
	}
	return st, nil
}

// FleetState merges the checkpoint's shard states into the fleet-wide
// view it represents — what an aggregator restored from this checkpoint
// would report before any live update.
func (st FleetCheckpointState) FleetState() (FleetState, error) {
	out := FleetState{Shards: len(st.Shards), Seqs: make([]uint64, len(st.Shards))}
	figs := make([]FiguresState, 0, len(st.Shards))
	snaps := make([]Snapshot, 0, len(st.Shards))
	for _, sc := range st.Shards {
		out.Reporting++
		if sc.State.Figures != nil {
			figs = append(figs, *sc.State.Figures)
		}
		if sc.State.Ingest != nil {
			snaps = append(snaps, *sc.State.Ingest)
		}
	}
	var err error
	out.Figures, err = MergeFiguresStates(figs...)
	if err != nil {
		return FleetState{}, err
	}
	out.Ingest = MergeSnapshots(snaps...)
	return out, nil
}

// SaveFleetCheckpoint writes st to path atomically, with the same
// temp-fsync-rename discipline as the per-shard SaveCheckpoint.
func SaveFleetCheckpoint(path string, st FleetCheckpointState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("collector: encoding fleet checkpoint: %w", err)
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// LoadFleetCheckpoint reads a fleet checkpoint. A missing file returns
// ok=false, mirroring LoadCheckpoint.
func LoadFleetCheckpoint(path string) (FleetCheckpointState, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return FleetCheckpointState{}, false, nil
	}
	if err != nil {
		return FleetCheckpointState{}, false, err
	}
	var st FleetCheckpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return FleetCheckpointState{}, false, fmt.Errorf("collector: decoding fleet checkpoint %s: %w", path, err)
	}
	return st, true, nil
}
