package collector

import (
	"io"

	"mburst/internal/obs"
)

// This file defines the collection pipeline's telemetry instruments (see
// internal/obs). Every constructor accepts a nil *obs.Registry and then
// returns instruments whose updates are no-ops, so the pipeline can be
// built identically with telemetry on or off — the disabled cost is one
// predicted branch per update.

// PollerMetrics instruments the sampling loop. Share one instance across
// pollers to aggregate a campaign, or register per-poller label sets.
type PollerMetrics struct {
	// Polls counts completed polls (each may emit several samples).
	Polls *obs.Counter
	// Missed counts missed sampling intervals — the Table 1 numerator.
	Missed *obs.Counter
	// BusyNanos accumulates simulated time spent inside polls.
	BusyNanos *obs.Counter
	// CPUBusy is the running busy fraction (busy / elapsed).
	CPUBusy *obs.Gauge
	// PollCost is the per-poll cost distribution in microseconds.
	PollCost *obs.Histogram
}

// NewPollerMetrics registers the poller instrument set on reg.
func NewPollerMetrics(reg *obs.Registry, labels ...obs.Label) *PollerMetrics {
	return &PollerMetrics{
		Polls: reg.Counter("mburst_poller_polls_total",
			"Completed polls of the counter set.", labels...),
		Missed: reg.Counter("mburst_poller_missed_intervals_total",
			"Sampling intervals in which no sample was taken (Table 1).", labels...),
		BusyNanos: reg.Counter("mburst_poller_busy_ns_total",
			"Simulated nanoseconds spent inside polls.", labels...),
		CPUBusy: reg.Gauge("mburst_poller_cpu_busy_frac",
			"Fraction of elapsed time spent polling.", labels...),
		PollCost: reg.Histogram("mburst_poller_poll_cost_us",
			"Per-poll cost in microseconds (access latency + jitter + interrupts).",
			obs.DefLatencyBucketsUS, labels...),
	}
}

// ClientMetrics instruments the switch→collector transport (Client and
// ReconnectingClient).
type ClientMetrics struct {
	// Batches counts batches flushed to the transport.
	Batches *obs.Counter
	// Bytes counts wire bytes written (framing included).
	Bytes *obs.Counter
	// FlushErrors counts failed batch writes.
	FlushErrors *obs.Counter
	// Delivered counts samples written to a live transport.
	Delivered *obs.Counter
	// Dropped counts samples discarded during outages (buffer overflow or
	// shutdown with an unreachable collector).
	Dropped *obs.Counter
	// Redials counts transport re-establishments.
	Redials *obs.Counter
	// Backoff is the current reconnect backoff in seconds (0 when
	// connected).
	Backoff *obs.Gauge
	// Pending is the number of samples buffered awaiting flush.
	Pending *obs.Gauge
	// Spooled is the number of samples sealed into the retransmit spool
	// awaiting redelivery.
	Spooled *obs.Gauge
	// SpoolDrops counts samples shed from a full retransmit spool (a
	// subset of Dropped).
	SpoolDrops *obs.Counter
}

// NewClientMetrics registers the client instrument set on reg.
func NewClientMetrics(reg *obs.Registry, labels ...obs.Label) *ClientMetrics {
	return &ClientMetrics{
		Batches: reg.Counter("mburst_client_batches_flushed_total",
			"Sample batches flushed to the collector transport.", labels...),
		Bytes: reg.Counter("mburst_client_bytes_flushed_total",
			"Wire bytes written to the collector transport.", labels...),
		FlushErrors: reg.Counter("mburst_client_flush_errors_total",
			"Batch writes that failed.", labels...),
		Delivered: reg.Counter("mburst_client_samples_delivered_total",
			"Samples successfully written to a transport.", labels...),
		Dropped: reg.Counter("mburst_client_samples_dropped_total",
			"Samples discarded while the collector was unreachable.", labels...),
		Redials: reg.Counter("mburst_client_redials_total",
			"Times the transport was (re)established.", labels...),
		Backoff: reg.Gauge("mburst_client_backoff_seconds",
			"Current reconnect backoff; 0 while connected.", labels...),
		Pending: reg.Gauge("mburst_client_pending_samples",
			"Samples buffered awaiting flush.", labels...),
		Spooled: reg.Gauge("mburst_client_spooled_samples",
			"Samples sealed in the retransmit spool awaiting redelivery.", labels...),
		SpoolDrops: reg.Counter("mburst_client_spool_dropped_total",
			"Samples shed from a full retransmit spool.", labels...),
	}
}

// ServerMetrics instruments the collector service (Serve side).
type ServerMetrics struct {
	// Conns counts accepted switch connections.
	Conns *obs.Counter
	// ActiveConns is the number of currently connected switches.
	ActiveConns *obs.Gauge
	// DecodeErrors counts connections torn down by stream corruption.
	DecodeErrors *obs.Counter
	// IngestLatency is the wall-clock cost of handling one decoded batch
	// (the handler chain: stats accounting + archival), in microseconds.
	IngestLatency *obs.Histogram
	// EpochRestarts counts agent restart transitions observed by the
	// epoch gate (a rack's epoch increasing).
	EpochRestarts *obs.Counter
	// StaleBatches counts batches dropped for carrying a superseded epoch.
	StaleBatches *obs.Counter
	// ReorderedBatches counts same-epoch batches dropped for regressing
	// sample time (duplicates or reordering).
	ReorderedBatches *obs.Counter
}

// NewServerMetrics registers the server instrument set on reg.
func NewServerMetrics(reg *obs.Registry, labels ...obs.Label) *ServerMetrics {
	return &ServerMetrics{
		Conns: reg.Counter("mburst_server_connections_total",
			"Switch connections accepted.", labels...),
		ActiveConns: reg.Gauge("mburst_server_active_connections",
			"Currently open switch connections.", labels...),
		DecodeErrors: reg.Counter("mburst_server_decode_errors_total",
			"Connections that failed batch decoding.", labels...),
		IngestLatency: reg.Histogram("mburst_ingest_latency_us",
			"Wall-clock batch handling latency in microseconds.",
			obs.DefLatencyBucketsUS, labels...),
		EpochRestarts: reg.Counter("mburst_server_epoch_restarts_total",
			"Agent restart transitions observed by the epoch gate.", labels...),
		StaleBatches: reg.Counter("mburst_server_stale_epoch_batches_total",
			"Batches dropped for carrying a superseded agent epoch.", labels...),
		ReorderedBatches: reg.Counter("mburst_server_reordered_batches_total",
			"Same-epoch batches dropped for regressing sample time.", labels...),
	}
}

// RecoveryMetrics instruments the durable ingest pipeline
// (DurableIngest): checkpoint cadence and failures, crash-replay volume,
// and batches lost to a dead archive.
type RecoveryMetrics struct {
	// Checkpoints counts checkpoints persisted.
	Checkpoints *obs.Counter
	// CheckpointErrors counts checkpoint saves that failed (the archive
	// tail covers the gap until the next success).
	CheckpointErrors *obs.Counter
	// CheckpointLag is the number of admitted batches not yet covered by
	// a checkpoint — the replay debt a crash right now would incur.
	CheckpointLag *obs.Gauge
	// ReplayedBatches counts archived batches re-applied at resume.
	ReplayedBatches *obs.Counter
	// IngestFailures counts batches dropped because the archive stopped
	// accepting writes.
	IngestFailures *obs.Counter
}

// NewRecoveryMetrics registers the durability instrument set on reg.
func NewRecoveryMetrics(reg *obs.Registry, labels ...obs.Label) *RecoveryMetrics {
	return &RecoveryMetrics{
		Checkpoints: reg.Counter("mburst_collector_checkpoints_total",
			"Durability checkpoints persisted.", labels...),
		CheckpointErrors: reg.Counter("mburst_collector_checkpoint_errors_total",
			"Checkpoint saves that failed.", labels...),
		CheckpointLag: reg.Gauge("mburst_collector_checkpoint_lag_batches",
			"Admitted batches not yet covered by a checkpoint.", labels...),
		ReplayedBatches: reg.Counter("mburst_collector_replayed_batches_total",
			"Archived batches replayed into restored accumulators at resume.", labels...),
		IngestFailures: reg.Counter("mburst_collector_ingest_failures_total",
			"Batches dropped because the archive stopped accepting writes.", labels...),
	}
}

// ShardMetrics instruments one collector shard's fan-in edge.
type ShardMetrics struct {
	// Misrouted counts batches dropped because the placement maps their
	// rack to a different shard — a placement-generation mismatch
	// between agent and collector, never a normal condition.
	Misrouted *obs.Counter
	// Published counts accumulator snapshots the shard cut for the
	// aggregation tier.
	Published *obs.Counter
}

// NewShardMetrics registers the shard instrument set on reg.
func NewShardMetrics(reg *obs.Registry, labels ...obs.Label) *ShardMetrics {
	return &ShardMetrics{
		Misrouted: reg.Counter("mburst_shard_misrouted_batches_total",
			"Batches dropped because the placement owns their rack elsewhere.", labels...),
		Published: reg.Counter("mburst_shard_updates_published_total",
			"Accumulator snapshots published to the aggregation tier.", labels...),
	}
}

// AggregatorMetrics instruments the fleet aggregation tier: the bounded
// fan-in queue's exact back-pressure accounting and the merge path.
// Enqueued + Dropped equals the updates offered; Applied + Stale +
// Rejected equals the updates drained — the equalities the back-pressure
// exactness tests pin down.
type AggregatorMetrics struct {
	// Enqueued counts updates accepted into the fan-in queue.
	Enqueued *obs.Counter
	// Dropped counts updates Offer shed because the queue was full.
	// Dropping loses freshness only: updates are cumulative cuts.
	Dropped *obs.Counter
	// Deferred counts Deliver calls that found the queue full and had to
	// block — the back-pressure signal on the must-land path.
	Deferred *obs.Counter
	// Applied counts updates folded into the retained per-shard state.
	Applied *obs.Counter
	// Stale counts updates superseded by an equal-or-newer Seq already
	// retained for their shard.
	Stale *obs.Counter
	// Rejected counts updates with an out-of-range shard index.
	Rejected *obs.Counter
	// QueueDepth is the fan-in queue's current occupancy.
	QueueDepth *obs.Gauge
	// Merges counts fleet-state merges served.
	Merges *obs.Counter
	// MergeLatency is the fleet merge wall-clock in microseconds,
	// populated only when AggregatorConfig.Now supplies a clock.
	MergeLatency *obs.Histogram
}

// NewAggregatorMetrics registers the aggregator instrument set on reg.
func NewAggregatorMetrics(reg *obs.Registry, labels ...obs.Label) *AggregatorMetrics {
	return &AggregatorMetrics{
		Enqueued: reg.Counter("mburst_agg_updates_enqueued_total",
			"Shard updates accepted into the fan-in queue.", labels...),
		Dropped: reg.Counter("mburst_agg_updates_dropped_total",
			"Shard updates shed by Offer because the fan-in queue was full.", labels...),
		Deferred: reg.Counter("mburst_agg_updates_deferred_total",
			"Deliver calls that blocked on a full fan-in queue.", labels...),
		Applied: reg.Counter("mburst_agg_updates_applied_total",
			"Shard updates folded into the retained fleet state.", labels...),
		Stale: reg.Counter("mburst_agg_updates_stale_total",
			"Shard updates superseded by a newer retained sequence.", labels...),
		Rejected: reg.Counter("mburst_agg_updates_rejected_total",
			"Shard updates with an out-of-range shard index.", labels...),
		QueueDepth: reg.Gauge("mburst_agg_queue_depth",
			"Fan-in queue occupancy.", labels...),
		Merges: reg.Counter("mburst_agg_merges_total",
			"Fleet-state merges served.", labels...),
		MergeLatency: reg.Histogram("mburst_agg_merge_latency_us",
			"Fleet-state merge wall-clock in microseconds.",
			obs.DefLatencyBucketsUS, labels...),
	}
}

// countingWriter counts bytes successfully written to the underlying
// writer. The count is read by the single flushing goroutine only; the
// metrics counters it feeds are atomic.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}
