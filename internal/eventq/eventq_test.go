package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"mburst/internal/simclock"
)

func TestFiringOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(simclock.Epoch.Add(simclock.Micros(30)), func(simclock.Time) { got = append(got, 3) })
	s.At(simclock.Epoch.Add(simclock.Micros(10)), func(simclock.Time) { got = append(got, 1) })
	s.At(simclock.Epoch.Add(simclock.Micros(20)), func(simclock.Time) { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("firing order = %v", got)
	}
	if s.Now() != simclock.Epoch.Add(simclock.Micros(30)) {
		t.Errorf("clock = %v, want 30µs", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	at := simclock.Epoch.Add(simclock.Micros(5))
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func(simclock.Time) { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	s := NewScheduler()
	var fired simclock.Time
	s.After(simclock.Micros(7), func(now simclock.Time) { fired = now })
	s.Run(0)
	if fired != simclock.Epoch.Add(simclock.Micros(7)) {
		t.Errorf("After fired at %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(simclock.Micros(1), func(simclock.Time) { fired = true })
	if !e.Scheduled() {
		t.Error("event should be scheduled")
	}
	if !s.Cancel(e) {
		t.Error("Cancel returned false for pending event")
	}
	if e.Scheduled() {
		t.Error("cancelled event still reports scheduled")
	}
	if s.Cancel(e) {
		t.Error("double cancel returned true")
	}
	if s.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
	s.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	var handles []*Event
	for i := 0; i < 20; i++ {
		i := i
		handles = append(handles, s.After(simclock.Micros(int64(i+1)), func(simclock.Time) { got = append(got, i) }))
	}
	// Cancel every third event.
	want := []int{}
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			s.Cancel(handles[i])
		} else {
			want = append(want, i)
		}
	}
	s.Run(0)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	s := NewScheduler()
	var got []string
	s.After(simclock.Micros(1), func(simclock.Time) {
		got = append(got, "a")
		s.After(simclock.Micros(1), func(simclock.Time) { got = append(got, "b") })
	})
	s.Run(0)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []int64
	for _, us := range []int64{10, 20, 30, 40} {
		us := us
		s.At(simclock.Epoch.Add(simclock.Micros(us)), func(simclock.Time) { got = append(got, us) })
	}
	deadline := simclock.Epoch.Add(simclock.Micros(25))
	s.RunUntil(deadline)
	if len(got) != 2 {
		t.Fatalf("RunUntil fired %v", got)
	}
	if s.Now() != deadline {
		t.Errorf("clock after RunUntil = %v, want %v", s.Now(), deadline)
	}
	// Boundary: events exactly at the deadline fire.
	s.RunUntil(simclock.Epoch.Add(simclock.Micros(30)))
	if len(got) != 3 || got[2] != 30 {
		t.Errorf("deadline-inclusive firing failed: %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(simclock.Epoch.Add(simclock.Micros(5)), func(simclock.Time) {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(simclock.Epoch, func(simclock.Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	s.At(simclock.Epoch, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func(simclock.Time) {})
}

func TestNextAt(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextAt(); ok {
		t.Error("NextAt on empty scheduler returned ok")
	}
	e := s.After(simclock.Micros(9), func(simclock.Time) {})
	s.After(simclock.Micros(12), func(simclock.Time) {})
	if at, ok := s.NextAt(); !ok || at != simclock.Epoch.Add(simclock.Micros(9)) {
		t.Errorf("NextAt = %v, %v", at, ok)
	}
	s.Cancel(e)
	if at, ok := s.NextAt(); !ok || at != simclock.Epoch.Add(simclock.Micros(12)) {
		t.Errorf("NextAt after cancel = %v, %v", at, ok)
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := int64(1); i <= 10; i++ {
		s.After(simclock.Micros(i), func(simclock.Time) { count++ })
	}
	if n := s.Run(4); n != 4 || count != 4 {
		t.Errorf("Run(4) fired %d/%d", n, count)
	}
	if n := s.Run(0); n != 6 || count != 10 {
		t.Errorf("Run(0) fired %d, total %d", n, count)
	}
	if s.Processed() != 10 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

// Property: for any multiset of schedule times, events fire in sorted order
// and the clock never regresses.
func TestQuickSortedFiring(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		var fired []simclock.Time
		for _, r := range raw {
			at := simclock.Epoch.Add(simclock.Micros(int64(r)))
			s.At(at, func(now simclock.Time) { fired = append(fired, now) })
		}
		s.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]int64, len(raw))
		for i, r := range raw {
			want[i] = int64(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, at := range fired {
			if at.Microseconds() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
