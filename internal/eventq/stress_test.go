package eventq

import (
	"testing"

	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// TestStressRandomScheduleAndCancel hammers the scheduler with a large
// randomized mix of scheduling, cancellation, and nested scheduling, then
// verifies global ordering, exact counts, and heap integrity.
func TestStressRandomScheduleAndCancel(t *testing.T) {
	src := rng.New(12345)
	s := NewScheduler()

	const initial = 50_000
	fired := 0
	var lastAt simclock.Time
	handles := make([]*Event, 0, initial)

	handler := func(now simclock.Time) {
		if now < lastAt {
			t.Fatalf("ordering violated: %v after %v", now, lastAt)
		}
		lastAt = now
		fired++
	}

	for i := 0; i < initial; i++ {
		at := simclock.Epoch.Add(simclock.Duration(src.Intn(10_000_000)))
		handles = append(handles, s.At(at, handler))
	}

	// Cancel a random third.
	cancelled := 0
	for _, h := range handles {
		if src.Bool(1.0/3) && s.Cancel(h) {
			cancelled++
		}
	}

	// Some events spawn children while running (children also count).
	spawned := 0
	for i := 0; i < 5_000; i++ {
		at := simclock.Epoch.Add(simclock.Duration(src.Intn(10_000_000)))
		s.At(at, func(now simclock.Time) {
			handler(now)
			if spawned < 2_000 {
				spawned++
				s.After(simclock.Duration(src.Intn(1000)+1), handler)
			}
		})
	}

	s.Run(0)

	// Each spawning event fires its own handler call plus the child's.
	want := initial - cancelled + 5_000 + spawned
	// The spawning wrapper calls handler itself, so total handler calls:
	if fired != want {
		t.Fatalf("fired %d handler calls, want %d (cancelled %d, spawned %d)", fired, want, cancelled, spawned)
	}
	if s.Len() != 0 {
		t.Errorf("events left in heap: %d", s.Len())
	}
	if s.Processed() != uint64(want) {
		t.Errorf("Processed = %d, want %d", s.Processed(), want)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	src := rng.New(1)
	noop := func(simclock.Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(simclock.Duration(src.Intn(1000)+1), noop)
		if i%2 == 1 {
			s.Step()
			s.Step()
		}
	}
	s.Run(0)
}

func BenchmarkSchedulerDeepHeap(b *testing.B) {
	// Sustained 10k-pending-event heap: the simulator's steady state.
	s := NewScheduler()
	src := rng.New(2)
	noop := func(simclock.Time) {}
	for i := 0; i < 10_000; i++ {
		s.After(simclock.Duration(src.Intn(1_000_000)+1), noop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(simclock.Duration(src.Intn(1_000_000)+1), noop)
		s.Step()
	}
}
