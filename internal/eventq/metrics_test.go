package eventq

import (
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
)

func TestSchedulerInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler()
	s.Instrument(reg)
	fired := 0
	for i := 1; i <= 5; i++ {
		s.At(simclock.Epoch.Add(simclock.Duration(i)), func(simclock.Time) { fired++ })
	}
	s.Run(0)
	if fired != 5 {
		t.Fatalf("fired = %d", fired)
	}
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, f := range snap.Families {
		vals[f.Name] = f.Series[0].Value
	}
	if vals["mburst_eventq_dispatched_total"] != 5 {
		t.Errorf("dispatched = %v, want 5", vals["mburst_eventq_dispatched_total"])
	}
	if vals["mburst_eventq_depth"] != 0 {
		t.Errorf("depth = %v, want 0 after drain", vals["mburst_eventq_depth"])
	}
}

func TestSchedulerUninstrumentedUnchanged(t *testing.T) {
	// The nil hooks must not perturb behaviour.
	s := NewScheduler()
	n := 0
	s.After(simclock.Microsecond, func(simclock.Time) { n++ })
	s.Run(0)
	if n != 1 || s.Processed() != 1 {
		t.Errorf("n = %d processed = %d", n, s.Processed())
	}
}
