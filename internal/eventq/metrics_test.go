package eventq

import (
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
)

func TestSchedulerInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler()
	s.Instrument(reg)
	fired := 0
	for i := 1; i <= 5; i++ {
		s.At(simclock.Epoch.Add(simclock.Duration(i)), func(simclock.Time) { fired++ })
	}
	s.Run(0)
	if fired != 5 {
		t.Fatalf("fired = %d", fired)
	}
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, f := range snap.Families {
		vals[f.Name] = f.Series[0].Value
	}
	if vals["mburst_eventq_dispatched_total"] != 5 {
		t.Errorf("dispatched = %v, want 5", vals["mburst_eventq_dispatched_total"])
	}
	if vals["mburst_eventq_depth"] != 0 {
		t.Errorf("depth = %v, want 0 after drain", vals["mburst_eventq_depth"])
	}
	// All five events were enqueued at the epoch; the last to fire was
	// scheduled 5 ns out, so the per-tick latency gauge reads 5.
	if vals["mburst_eventq_dispatch_latency_ns"] != 5 {
		t.Errorf("dispatch latency = %v, want 5", vals["mburst_eventq_dispatch_latency_ns"])
	}
}

func TestSchedulerDispatchLatencyTracksEnqueueTime(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler()
	s.Instrument(reg)
	// Event A at t=10 enqueues event B at t=10+3; B's latency is 3, not 13.
	s.At(simclock.Epoch.Add(10), func(now simclock.Time) {
		s.After(3, func(simclock.Time) {})
	})
	s.Run(0)
	var got float64
	for _, f := range reg.Snapshot().Families {
		if f.Name == "mburst_eventq_dispatch_latency_ns" {
			got = f.Series[0].Value
		}
	}
	if got != 3 {
		t.Errorf("dispatch latency = %v, want 3", got)
	}
}

func TestSchedulerUninstrumentedUnchanged(t *testing.T) {
	// The nil hooks must not perturb behaviour.
	s := NewScheduler()
	n := 0
	s.After(simclock.Microsecond, func(simclock.Time) { n++ })
	s.Run(0)
	if n != 1 || s.Processed() != 1 {
		t.Errorf("n = %d processed = %d", n, s.Processed())
	}
}
