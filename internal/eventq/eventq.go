// Package eventq implements the discrete-event kernel that drives the rack
// simulator and the collection framework's virtual scheduling.
//
// The kernel is a classic event-list design: a binary min-heap of events
// ordered by (time, sequence number). The sequence number makes the order of
// same-instant events deterministic — FIFO in scheduling order — which is
// required for bit-reproducible campaigns (DESIGN.md §4).
//
// Events may be cancelled; cancellation is O(log n) thanks to an index
// maintained inside each event handle. The scheduler exposes both a
// run-to-completion loop and a bounded RunUntil used by the simulator's
// tick engine to interleave event processing with per-tick fluid updates.
package eventq

import (
	"container/heap"
	"fmt"

	"mburst/internal/obs"
	"mburst/internal/simclock"
)

// Handler is the callback invoked when an event fires. now is the event's
// scheduled time, which is also the scheduler clock's current time.
type Handler func(now simclock.Time)

// Event is a handle for a scheduled event, usable to cancel it.
type Event struct {
	at      simclock.Time
	schedAt simclock.Time // clock time when the event was enqueued
	seq     uint64
	fn      Handler
	index   int // heap index; -1 when not queued
	stopped bool
}

// At returns the time the event is (or was) scheduled to fire.
func (e *Event) At() simclock.Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.stopped }

// Scheduler owns the virtual clock and the pending event set.
type Scheduler struct {
	clock *simclock.Clock
	pq    eventHeap
	seq   uint64

	// processed counts events fired since construction; exposed for tests
	// and for the simulator's progress accounting.
	processed uint64

	// dispatched/depth/dispatchLat are nil-safe telemetry hooks (see
	// Instrument); nil (the default) costs one predicted branch per event.
	dispatched  *obs.Counter
	depth       *obs.Gauge
	dispatchLat *obs.Gauge
}

// NewScheduler returns an empty scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{clock: simclock.NewClock()}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() simclock.Time { return s.clock.Now() }

// Clock exposes the underlying virtual clock (read-only use expected).
func (s *Scheduler) Clock() *simclock.Clock { return s.clock }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return s.pq.Len() }

// Processed returns the number of events fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Instrument exposes kernel health on reg: events dispatched and the
// pending-queue depth. The depth gauge is updated from Step (an atomic
// store per event) rather than read at scrape time, so concurrent
// scrapes never touch the unsynchronized heap. Nil reg is a no-op.
func (s *Scheduler) Instrument(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	s.dispatched = reg.Counter("mburst_eventq_dispatched_total",
		"Events fired by the discrete-event kernel.", labels...)
	s.depth = reg.Gauge("mburst_eventq_depth",
		"Pending events in the kernel's queue (updated per dispatch).", labels...)
	s.depth.Set(float64(s.pq.Len()))
	s.dispatchLat = reg.Gauge("mburst_eventq_dispatch_latency_ns",
		"Virtual-time delay of the last dispatched event: fire time minus enqueue time.", labels...)
}

// At schedules fn to run at time t. Scheduling in the past panics: an
// event that should already have happened indicates a logic error and
// silently reordering it would corrupt counter timelines.
func (s *Scheduler) At(t simclock.Time, fn Handler) *Event {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("eventq: scheduling at %v, before now %v", t, s.clock.Now()))
	}
	if fn == nil {
		panic("eventq: nil handler")
	}
	e := &Event{at: t, schedAt: s.clock.Now(), seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.pq, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d simclock.Duration, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventq: negative delay %v", d))
	}
	return s.At(s.clock.Now().Add(d), fn)
}

// Cancel removes a pending event. Cancelling a nil, already-fired, or
// already-cancelled event is a no-op and returns false.
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.stopped {
		return false
	}
	e.stopped = true
	heap.Remove(&s.pq, e.index)
	return true
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if no events are pending.
func (s *Scheduler) Step() bool {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*Event)
		if e.stopped {
			continue
		}
		s.clock.AdvanceTo(e.at)
		s.processed++
		s.dispatched.Inc()
		s.depth.Set(float64(s.pq.Len()))
		s.dispatchLat.Set(float64(e.at.Sub(e.schedAt)))
		e.fn(e.at)
		return true
	}
	return false
}

// RunUntil fires all events scheduled at or before deadline, then advances
// the clock to the deadline. Events scheduled during the run are processed
// too if they fall within the deadline.
func (s *Scheduler) RunUntil(deadline simclock.Time) {
	for s.pq.Len() > 0 && s.pq[0].at <= deadline {
		if !s.Step() {
			break
		}
	}
	if deadline > s.clock.Now() {
		s.clock.AdvanceTo(deadline)
	}
}

// Run fires events until none remain or until maxEvents have been
// processed (0 means no limit). It returns the number of events fired.
func (s *Scheduler) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// NextAt returns the time of the earliest pending event, and whether one
// exists.
func (s *Scheduler) NextAt() (simclock.Time, bool) {
	for s.pq.Len() > 0 {
		if s.pq[0].stopped { // lazily shed cancelled heads
			heap.Pop(&s.pq)
			continue
		}
		return s.pq[0].at, true
	}
	return 0, false
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
