package simnet

import (
	"mburst/internal/obs"
)

// RegisterMetrics exposes the rack's data-plane health on reg as
// scrape-time adapters over existing switch state — the simulation pays
// nothing between scrapes. Drop and ECN totals are the signals the paper
// correlates with microbursts (Fig 1, §7), surfaced here so a live
// campaign can watch them without a separate analysis pass.
//
// The funcs read the switch's cumulative counters without locks; a
// scrape concurrent with a running simulation may observe a value that
// is a tick stale, which is harmless for monotone counters. Labels
// (e.g. rack="3") distinguish multiple racks on one registry.
func (n *Net) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	sw := n.sw
	reg.CounterFunc("mburst_simnet_drops_total",
		"Cumulative packets discarded by the shared-buffer ASIC.",
		func() float64 { return float64(sw.TotalDropped()) }, labels...)
	reg.CounterFunc("mburst_simnet_ecn_marks_total",
		"Cumulative packets ECN-marked at egress, summed over ports.",
		func() float64 {
			var total uint64
			for p := 0; p < sw.NumPorts(); p++ {
				total += sw.Port(p).ECNMarks()
			}
			return float64(total)
		}, labels...)
	reg.GaugeFunc("mburst_simnet_buffer_used_bytes",
		"Shared buffer occupancy in bytes.",
		sw.BufferUsed, labels...)
	reg.GaugeFunc("mburst_simnet_active_flows",
		"Flows currently in flight on the rack.",
		func() float64 { return float64(n.activeFlows) }, labels...)
	reg.GaugeFunc("mburst_simnet_sim_time_ns",
		"Current simulated time in nanoseconds.",
		func() float64 { return float64(n.sched.Now().Nanoseconds()) }, labels...)
}
