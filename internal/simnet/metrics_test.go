package simnet

import (
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

func TestRegisterMetrics(t *testing.T) {
	net, err := New(Config{
		Rack:   topo.Default(16),
		Params: workload.DefaultParams(workload.Hadoop),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	net.RegisterMetrics(reg, obs.L("rack", "0"))
	net.Scheduler().Instrument(reg)
	net.Run(20 * simclock.Millisecond)

	vals := map[string]float64{}
	for _, f := range reg.Snapshot().Families {
		vals[f.Name] = f.Series[0].Value
	}
	if vals["mburst_eventq_dispatched_total"] == 0 {
		t.Error("no events dispatched")
	}
	if want := float64(net.Now().Nanoseconds()); vals["mburst_simnet_sim_time_ns"] != want || want <= 0 {
		t.Errorf("sim time = %v, want %v", vals["mburst_simnet_sim_time_ns"], want)
	}
	// Hadoop racks under default load see traffic; drops may be zero in a
	// short run, but the series must exist and be readable.
	for _, name := range []string{
		"mburst_simnet_drops_total",
		"mburst_simnet_ecn_marks_total",
		"mburst_simnet_buffer_used_bytes",
		"mburst_simnet_active_flows",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
}
