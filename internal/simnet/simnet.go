// Package simnet is the rack simulator: it binds a workload generator, the
// rack topology, ECMP uplink selection, and the switch ASIC model into a
// single deterministic discrete-time machine.
//
// Traffic is fluid at a fixed native tick (default 5 µs — finer than the
// paper's finest 25 µs sampling so that sub-sample µbursts exist, §5.1):
// active flows contribute rate × tick bytes to their ports each tick, the
// ASIC transmits/queues/drops, and counter-reading components (the
// collection framework) observe the ASIC through scheduler events
// interleaved with ticks.
//
// Port usage per flow kind (see workload.FlowKind):
//
//	FlowIn    fabric → server: RX on an uplink chosen by the fabric-side
//	          hasher, TX on the server's downlink.
//	FlowOut   server → fabric: RX on the server's downlink, TX on an
//	          uplink chosen by the ToR's balancer (the §6.1 subject).
//	FlowIntra peer → server inside the rack: RX on the peer's downlink,
//	          TX on the server's downlink.
package simnet

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/ecmp"
	"mburst/internal/eventq"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

// BalancerMode selects the uplink balancing scheme for rack egress.
type BalancerMode int

const (
	// BalanceFlow is production flow-level ECMP (static consistent hash).
	BalanceFlow BalancerMode = iota
	// BalanceFlowlet re-picks paths after idle gaps (§7 ablation).
	BalanceFlowlet
	// BalanceRoundRobin is the idealized per-pick rotation (§7 ablation).
	BalanceRoundRobin
)

// String names the mode.
func (m BalancerMode) String() string {
	switch m {
	case BalanceFlow:
		return "flow"
	case BalanceFlowlet:
		return "flowlet"
	case BalanceRoundRobin:
		return "roundrobin"
	default:
		return fmt.Sprintf("BalancerMode(%d)", int(m))
	}
}

// Config configures one simulated rack.
type Config struct {
	// Rack is the physical shape; zero value means topo.Default(32).
	Rack topo.Rack
	// Params is the workload; zero value is rejected (use
	// workload.DefaultParams).
	Params workload.Params
	// Tick is the native simulation step (default 5 µs).
	Tick simclock.Duration
	// BufferBytes is the ToR's shared buffer (default 4 MB).
	BufferBytes float64
	// Alpha is the dynamic-threshold factor (default 2).
	Alpha float64
	// Seed makes the run reproducible.
	Seed uint64
	// RackID distinguishes racks within a campaign (affects flow IPs).
	RackID int
	// LoadScale scales offered load (diurnal factor; default 1).
	LoadScale float64
	// Balancer selects the uplink balancing scheme (default BalanceFlow).
	Balancer BalancerMode
	// FlowletGap is the idle gap that splits flowlets in BalanceFlowlet
	// mode (default 500 µs).
	FlowletGap simclock.Duration
	// ECNThresholdBytes enables DCTCP-style marking in the ASIC
	// (extension; 0 disables).
	ECNThresholdBytes float64
}

func (c *Config) applyDefaults() {
	if c.Rack.NumServers == 0 {
		c.Rack = topo.Default(32)
	}
	if c.Tick == 0 {
		c.Tick = 5 * simclock.Microsecond
	}
	if c.BufferBytes == 0 {
		// A shallow-buffer ToR share: production chips of the paper's era
		// carried ~12 MB across ~100+ ports; 1.5 MB approximates the slice
		// available to a 36-port rack under typical pool partitioning.
		c.BufferBytes = 1.5 * (1 << 20)
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1
	}
	if c.FlowletGap == 0 {
		c.FlowletGap = 500 * simclock.Microsecond
	}
}

// Net is a running rack simulation.
type Net struct {
	cfg   Config
	rack  topo.Rack
	sched *eventq.Scheduler
	sw    *asic.Switch
	gen   *workload.Generator

	upTx ecmp.Balancer // ToR's egress balancer (measured in Fig 7a)
	upRx ecmp.Balancer // fabric's arrival spread (measured in Fig 7b)

	txRate []float64
	rxRate []float64
	txProf [][asic.NumSizeBins]float64
	rxProf [][asic.NumSizeBins]float64

	bindings map[*workload.Flow]binding

	activeFlows int
	maxActive   int

	txObserver TrafficObserver
	rxObserver TrafficObserver
}

// TrafficObserver receives every port's offered traffic once per tick,
// before the ASIC applies queueing. Measurement baselines (e.g.
// sFlow-style packet sampling, internal/pktsample) and higher network
// tiers (internal/fabric) tap the data path here.
type TrafficObserver func(now simclock.Time, port int, nbytes float64, profile asic.TrafficProfile)

type binding struct {
	rxPort, txPort int
}

// New builds a simulation from the config.
func New(cfg Config) (*Net, error) {
	cfg.applyDefaults()
	if err := cfg.Rack.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("simnet: non-positive tick %v", cfg.Tick)
	}
	seed := rng.New(cfg.Seed)
	gen, err := workload.NewGenerator(cfg.Params, cfg.Rack, cfg.RackID, cfg.LoadScale, seed.Split("workload"))
	if err != nil {
		return nil, err
	}

	n := cfg.Rack.NumPorts()
	net := &Net{
		cfg:   cfg,
		rack:  cfg.Rack,
		sched: eventq.NewScheduler(),
		sw: asic.New(asic.Config{
			PortSpeeds:        cfg.Rack.PortSpeeds(),
			PortNames:         cfg.Rack.PortNames(),
			BufferBytes:       cfg.BufferBytes,
			Alpha:             cfg.Alpha,
			ECNThresholdBytes: cfg.ECNThresholdBytes,
		}),
		gen:      gen,
		txRate:   make([]float64, n),
		rxRate:   make([]float64, n),
		txProf:   make([][asic.NumSizeBins]float64, n),
		rxProf:   make([][asic.NumSizeBins]float64, n),
		bindings: make(map[*workload.Flow]binding),
	}

	hashSeed := seed.Split("ecmp").Uint64()
	switch cfg.Balancer {
	case BalanceFlow:
		net.upTx = ecmp.NewFlowHasher(cfg.Rack.NumUplinks, hashSeed)
	case BalanceFlowlet:
		fb := ecmp.NewFlowletBalancer(cfg.Rack.NumUplinks, hashSeed, cfg.FlowletGap)
		net.upTx = fb
		// Long campaigns would otherwise accumulate per-flow state for
		// every 5-tuple ever seen; shed flows idle for many gaps.
		var gc func(simclock.Time)
		gc = func(now simclock.Time) {
			cutoff := now.Add(-100 * cfg.FlowletGap)
			if cutoff > 0 {
				fb.Forget(cutoff)
			}
			net.sched.After(50*cfg.FlowletGap, gc)
		}
		net.sched.After(50*cfg.FlowletGap, gc)
	case BalanceRoundRobin:
		net.upTx = ecmp.NewRoundRobin(cfg.Rack.NumUplinks)
	default:
		return nil, fmt.Errorf("simnet: unknown balancer mode %v", cfg.Balancer)
	}
	// The fabric hashes arriving flows independently of our ToR.
	net.upRx = ecmp.NewFlowHasher(cfg.Rack.NumUplinks, seed.Split("fabric").Uint64())

	gen.Install(net.sched, net)
	return net, nil
}

// Scheduler returns the simulation's event scheduler; components such as
// the collector register their polling events on it.
func (n *Net) Scheduler() *eventq.Scheduler { return n.sched }

// Switch returns the ASIC model for counter reads.
func (n *Net) Switch() *asic.Switch { return n.sw }

// Rack returns the topology.
func (n *Net) Rack() topo.Rack { return n.rack }

// Now returns the current simulated time.
func (n *Net) Now() simclock.Time { return n.sched.Now() }

// Tick returns the native tick duration.
func (n *Net) Tick() simclock.Duration { return n.cfg.Tick }

// ActiveFlows returns the number of currently active flows.
func (n *Net) ActiveFlows() int { return n.activeFlows }

// MaxActiveFlows returns the high-water mark of concurrent flows.
func (n *Net) MaxActiveFlows() int { return n.maxActive }

// Generator exposes the workload generator (for flow accounting in tests).
func (n *Net) Generator() *workload.Generator { return n.gen }

// StartFlow implements workload.Sink.
func (n *Net) StartFlow(f *workload.Flow) {
	if _, dup := n.bindings[f]; dup {
		panic("simnet: flow started twice")
	}
	var b binding
	switch f.Kind {
	case workload.FlowIn:
		b.rxPort = n.rack.UplinkPort(n.upRx.Pick(f.Key, n.sched.Now()))
		b.txPort = n.rack.ServerPort(f.Server)
	case workload.FlowOut:
		b.rxPort = n.rack.ServerPort(f.Server)
		b.txPort = n.rack.UplinkPort(n.upTx.Pick(f.Key, n.sched.Now()))
	case workload.FlowIntra:
		b.rxPort = n.rack.ServerPort(f.Peer)
		b.txPort = n.rack.ServerPort(f.Server)
	default:
		panic(fmt.Sprintf("simnet: unknown flow kind %v", f.Kind))
	}
	n.bindings[f] = b
	n.addRate(b, f, +1)
	n.activeFlows++
	if n.activeFlows > n.maxActive {
		n.maxActive = n.activeFlows
	}
}

// EndFlow implements workload.Sink.
func (n *Net) EndFlow(f *workload.Flow) {
	b, ok := n.bindings[f]
	if !ok {
		panic("simnet: ending unknown flow")
	}
	delete(n.bindings, f)
	n.addRate(b, f, -1)
	n.activeFlows--
}

func (n *Net) addRate(b binding, f *workload.Flow, sign float64) {
	r := sign * f.Rate
	n.rxRate[b.rxPort] += r
	n.txRate[b.txPort] += r
	for i, frac := range f.Profile {
		n.rxProf[b.rxPort][i] += r * frac
		n.txProf[b.txPort][i] += r * frac
	}
	// Clamp float drift after removals.
	if sign < 0 {
		if n.rxRate[b.rxPort] < 0 {
			n.rxRate[b.rxPort] = 0
		}
		if n.txRate[b.txPort] < 0 {
			n.txRate[b.txPort] = 0
		}
	}
}

// Run advances the simulation by d, processing scheduled events and
// applying the fluid data path every tick.
func (n *Net) Run(d simclock.Duration) {
	if d < 0 {
		panic("simnet: negative run duration")
	}
	end := n.sched.Now().Add(d)
	for n.sched.Now().Before(end) {
		step := n.cfg.Tick
		if remaining := end.Sub(n.sched.Now()); remaining < step {
			step = remaining
		}
		tickEnd := n.sched.Now().Add(step)
		n.sched.RunUntil(tickEnd)
		n.applyTick(step)
	}
}

// SetTxObserver installs an egress traffic observer (nil to remove).
func (n *Net) SetTxObserver(obs TrafficObserver) { n.txObserver = obs }

// SetRxObserver installs an ingress traffic observer (nil to remove).
// For uplink ports this is the fabric→ToR direction, which is how the
// fabric tier learns what it must have forwarded down to this rack.
func (n *Net) SetRxObserver(obs TrafficObserver) { n.rxObserver = obs }

// applyTick charges each port's accumulated rate into the ASIC and
// advances the data path one tick.
func (n *Net) applyTick(step simclock.Duration) {
	sec := step.Seconds()
	for p := range n.txRate {
		if r := n.txRate[p]; r > 1e-9 {
			profile := normalizeProfile(n.txProf[p], r)
			if n.txObserver != nil {
				n.txObserver(n.sched.Now(), p, r*sec, profile)
			}
			n.sw.OfferTx(p, r*sec, profile)
		}
		if r := n.rxRate[p]; r > 1e-9 {
			profile := normalizeProfile(n.rxProf[p], r)
			if n.rxObserver != nil {
				n.rxObserver(n.sched.Now(), p, r*sec, profile)
			}
			n.sw.OfferRx(p, r*sec, profile)
		}
	}
	n.sw.Tick(step)
}

// normalizeProfile converts a rate-weighted profile sum into fractions.
// Negative drift from float subtraction is clamped to zero and the vector
// renormalized.
func normalizeProfile(sum [asic.NumSizeBins]float64, _ float64) asic.TrafficProfile {
	var total float64
	var p asic.TrafficProfile
	for i, v := range sum {
		if v < 0 {
			v = 0
		}
		p[i] = v
		total += v
	}
	if total <= 0 {
		// Degenerate: all drift; attribute to full-size packets.
		p = asic.TrafficProfile{}
		p[asic.NumSizeBins-1] = 1
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}
