package simnet

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

func newNet(t *testing.T, app workload.App, seed uint64) *Net {
	t.Helper()
	n, err := New(Config{
		Rack:   topo.Default(8),
		Params: workload.DefaultParams(app),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDefaultsApplied(t *testing.T) {
	n, err := New(Config{Params: workload.DefaultParams(Web())})
	if err != nil {
		t.Fatal(err)
	}
	if n.Rack().NumServers != 32 {
		t.Errorf("default rack servers = %d", n.Rack().NumServers)
	}
	if n.Tick() != 5*simclock.Microsecond {
		t.Errorf("default tick = %v", n.Tick())
	}
	if n.Switch().BufferBytes() != 1.5*(1<<20) {
		t.Errorf("default buffer = %v", n.Switch().BufferBytes())
	}
}

// Web returns workload.Web; indirection keeps the import of workload
// obviously used in table-driven helpers.
func Web() workload.App { return workload.Web }

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(Config{Params: workload.Params{}}); err == nil {
		t.Error("zero params accepted")
	}
	bad := Config{Params: workload.DefaultParams(workload.Web), Balancer: BalancerMode(99)}
	if _, err := New(bad); err == nil {
		t.Error("unknown balancer accepted")
	}
	negRack := Config{
		Params: workload.DefaultParams(workload.Web),
		Rack:   topo.Rack{NumServers: 2, NumUplinks: 0, ServerSpeed: 1, UplinkSpeed: 1},
	}
	if _, err := New(negRack); err == nil {
		t.Error("invalid rack accepted")
	}
}

func TestRunAdvancesAndCounts(t *testing.T) {
	n := newNet(t, workload.Web, 1)
	n.Run(simclock.Millis(20))
	if n.Now() != simclock.Epoch.Add(simclock.Millis(20)) {
		t.Errorf("Now = %v", n.Now())
	}
	var total uint64
	for p := 0; p < n.Rack().NumPorts(); p++ {
		total += n.Switch().Port(p).Bytes(asic.TX)
	}
	if total == 0 {
		t.Error("no bytes transmitted in 20ms of web traffic")
	}
	if n.MaxActiveFlows() == 0 {
		t.Error("no flows ever active")
	}
}

func TestRunPartialTick(t *testing.T) {
	n := newNet(t, workload.Web, 2)
	// 12µs is not a multiple of the 5µs tick; the final partial tick must
	// land exactly on the deadline.
	n.Run(simclock.Micros(12))
	if n.Now() != simclock.Epoch.Add(simclock.Micros(12)) {
		t.Errorf("Now = %v, want 12µs", n.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Run did not panic")
		}
	}()
	n.Run(-1)
}

func TestDeterministicRuns(t *testing.T) {
	fingerprint := func(seed uint64) []uint64 {
		n := newNet(t, workload.Cache, seed)
		n.Run(simclock.Millis(30))
		var fp []uint64
		for p := 0; p < n.Rack().NumPorts(); p++ {
			port := n.Switch().Port(p)
			fp = append(fp, port.Bytes(asic.TX), port.Bytes(asic.RX), port.Drops(), port.Packets(asic.TX))
		}
		return fp
	}
	a, b := fingerprint(99), fingerprint(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at counter %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := fingerprint(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical counters")
	}
}

func TestTrafficLandsOnExpectedPorts(t *testing.T) {
	// Web fan-in is remote: uplinks must see RX traffic and downlinks TX.
	n := newNet(t, workload.Web, 3)
	n.Run(simclock.Millis(30))
	rack := n.Rack()
	var upRx, downTx uint64
	for i := 0; i < rack.NumUplinks; i++ {
		upRx += n.Switch().Port(rack.UplinkPort(i)).Bytes(asic.RX)
	}
	for s := 0; s < rack.NumServers; s++ {
		downTx += n.Switch().Port(rack.ServerPort(s)).Bytes(asic.TX)
	}
	if upRx == 0 {
		t.Error("no uplink RX despite remote fan-in")
	}
	if downTx == 0 {
		t.Error("no downlink TX")
	}
}

func TestCacheUplinkEgressDominates(t *testing.T) {
	n := newNet(t, workload.Cache, 4)
	n.Run(simclock.Millis(50))
	rack := n.Rack()
	var upTx, downTx uint64
	for i := 0; i < rack.NumUplinks; i++ {
		upTx += n.Switch().Port(rack.UplinkPort(i)).Bytes(asic.TX)
	}
	for s := 0; s < rack.NumServers; s++ {
		downTx += n.Switch().Port(rack.ServerPort(s)).Bytes(asic.TX)
	}
	if upTx <= downTx {
		t.Errorf("cache rack should send more up (%d) than down (%d) (§6.3)", upTx, downTx)
	}
}

func TestFlowAccountingBalances(t *testing.T) {
	n := newNet(t, workload.Hadoop, 5)
	n.Run(simclock.Millis(30))
	gen := n.Generator()
	if gen.FlowsStarted() == 0 {
		t.Fatal("no flows")
	}
	if got, want := n.ActiveFlows(), int(gen.FlowsStarted()-gen.FlowsEnded()); got != want {
		t.Errorf("active flows = %d, generator says %d", got, want)
	}
	// Rates must be non-negative after all the add/remove churn.
	for p := range n.txRate {
		if n.txRate[p] < 0 || n.rxRate[p] < 0 {
			t.Fatalf("negative residual rate on port %d", p)
		}
	}
}

func TestUtilizationBounded(t *testing.T) {
	// Transmitted bytes can never exceed line rate × time on any port.
	for _, app := range workload.Apps {
		n := newNet(t, app, 6)
		dur := simclock.Millis(40)
		n.Run(dur)
		for p := 0; p < n.Rack().NumPorts(); p++ {
			port := n.Switch().Port(p)
			lineBytes := float64(port.Speed()) / 8 * dur.Seconds()
			if got := float64(port.Bytes(asic.TX)); got > lineBytes*1.001 {
				t.Errorf("%v port %d transmitted %.0f > line capacity %.0f", app, p, got, lineBytes)
			}
		}
	}
}

func TestHadoopGeneratesBufferPressure(t *testing.T) {
	n := newNet(t, workload.Hadoop, 7)
	var maxPeak float64
	for i := 0; i < 20; i++ {
		n.Run(simclock.Millis(5))
		if pk := n.Switch().ReadPeakBufferAndClear(); pk > maxPeak {
			maxPeak = pk
		}
	}
	if maxPeak <= 0 {
		t.Error("hadoop never occupied the shared buffer")
	}
}

func TestBalancerModes(t *testing.T) {
	for _, mode := range []BalancerMode{BalanceFlow, BalanceFlowlet, BalanceRoundRobin} {
		n, err := New(Config{
			Rack:     topo.Default(8),
			Params:   workload.DefaultParams(workload.Cache),
			Seed:     8,
			Balancer: mode,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		n.Run(simclock.Millis(10))
		var upTx uint64
		for i := 0; i < 4; i++ {
			upTx += n.Switch().Port(n.Rack().UplinkPort(i)).Bytes(asic.TX)
		}
		if upTx == 0 {
			t.Errorf("%v: no uplink egress", mode)
		}
	}
	if BalanceFlow.String() != "flow" || BalanceFlowlet.String() != "flowlet" || BalanceRoundRobin.String() != "roundrobin" {
		t.Error("mode names wrong")
	}
}

func TestRoundRobinBalancesBetterThanFlowHash(t *testing.T) {
	imbalance := func(mode BalancerMode) float64 {
		n, err := New(Config{
			Rack:     topo.Default(8),
			Params:   workload.DefaultParams(workload.Hadoop),
			Seed:     9,
			Balancer: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Run(simclock.Millis(60))
		var tx [4]float64
		for i := 0; i < 4; i++ {
			tx[i] = float64(n.Switch().Port(n.Rack().UplinkPort(i)).Bytes(asic.TX))
		}
		mean := (tx[0] + tx[1] + tx[2] + tx[3]) / 4
		if mean == 0 {
			return 0
		}
		var mad float64
		for _, v := range tx {
			mad += math.Abs(v - mean)
		}
		return mad / 4 / mean
	}
	flow := imbalance(BalanceFlow)
	rr := imbalance(BalanceRoundRobin)
	if rr >= flow {
		t.Errorf("round robin imbalance %v should beat flow hashing %v", rr, flow)
	}
}
