package simnet

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

// TestSoakStationarity runs each application for several simulated seconds
// and verifies the traffic process is stationary: the second half's hot
// fraction and mean utilization stay close to the first half's, active
// flows do not accumulate, and the shared buffer never leaks occupancy.
// This guards against slow drifts that short windows would hide.
func TestSoakStationarity(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, app := range workload.Apps {
		app := app
		t.Run(app.String(), func(t *testing.T) {
			n, err := New(Config{
				Rack:   topo.Default(16),
				Params: workload.DefaultParams(app),
				Seed:   2024,
			})
			if err != nil {
				t.Fatal(err)
			}
			n.Run(50 * simclock.Millisecond) // warmup

			half := func() (hotFrac, meanUtil float64) {
				const interval = 25 * simclock.Microsecond
				const dur = 1500 * simclock.Millisecond
				samples := int(simclock.Duration(dur).Ticks(interval))
				nports := n.Rack().NumPorts()
				prev := make([]uint64, nports)
				for p := range prev {
					prev[p] = n.Switch().Port(p).Bytes(asic.TX)
				}
				var hot, total int
				var sum float64
				for i := 0; i < samples; i++ {
					n.Run(interval)
					for p := 0; p < nports; p++ {
						cur := n.Switch().Port(p).Bytes(asic.TX)
						util := float64(cur-prev[p]) * 8 / (float64(n.Switch().Port(p).Speed()) * interval.Seconds())
						prev[p] = cur
						sum += util
						total++
						if util > 0.5 {
							hot++
						}
					}
				}
				return float64(hot) / float64(total), sum / float64(total)
			}

			hot1, mean1 := half()
			flowsMid := n.ActiveFlows()
			hot2, mean2 := half()
			flowsEnd := n.ActiveFlows()

			if mean1 <= 0 || mean2 <= 0 {
				t.Fatalf("degenerate utilization: %v / %v", mean1, mean2)
			}
			if rel := math.Abs(mean2-mean1) / mean1; rel > 0.25 {
				t.Errorf("mean utilization drifted %.0f%%: %v -> %v", rel*100, mean1, mean2)
			}
			if hot1 > 0 {
				if rel := math.Abs(hot2-hot1) / hot1; rel > 0.5 {
					t.Errorf("hot fraction drifted %.0f%%: %v -> %v", rel*100, hot1, hot2)
				}
			}
			// Flow population must stay bounded (no leak): the end count
			// stays within a small factor of the midpoint count.
			if flowsEnd > 3*flowsMid+64 {
				t.Errorf("active flows grew %d -> %d; leak?", flowsMid, flowsEnd)
			}
			// Buffer occupancy equals the sum of queues — nothing leaked.
			var queues float64
			for p := 0; p < n.Rack().NumPorts(); p++ {
				queues += n.Switch().Port(p).QueueBytes()
			}
			if math.Abs(queues-n.Switch().BufferUsed()) > 1 {
				t.Errorf("buffer accounting drifted: queues %v vs used %v", queues, n.Switch().BufferUsed())
			}
		})
	}
}

// TestFlowletStateBounded verifies the periodic garbage collection keeps
// the flowlet balancer's per-flow state from growing without bound over a
// long run.
func TestFlowletStateBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n, err := New(Config{
		Rack:       topo.Default(16),
		Params:     workload.DefaultParams(workload.Cache),
		Seed:       9,
		Balancer:   BalanceFlowlet,
		FlowletGap: 500 * simclock.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := n.upTx.(interface{ TrackedFlows() int })
	if !ok {
		t.Fatal("balancer does not expose TrackedFlows")
	}
	n.Run(500 * simclock.Millisecond)
	mid := fb.TrackedFlows()
	n.Run(1500 * simclock.Millisecond)
	end := fb.TrackedFlows()
	if mid == 0 {
		t.Fatal("no flowlet state at all")
	}
	// Cache churns thousands of flows per second; without GC the state
	// would grow ~4x over this run. Allow slack for load variation.
	if end > 2*mid+1000 {
		t.Errorf("flowlet state grew %d -> %d over 3x the time; GC ineffective", mid, end)
	}
}
