package simnet

import (
	"testing"

	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

// TestCalibrationShapes runs each application and checks the coarse shape
// targets from the paper (§5–§6), logging the measured values so parameter
// tuning is visible under -v. Sampling here reads counters directly at a
// 25 µs cadence, bypassing the collector, to isolate workload calibration.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is not short")
	}
	type shape struct {
		downHot, upHot float64 // fraction of hot 25µs samples per class
		meanRun        float64 // mean hot-run length in samples (all ports)
		upShare        float64 // uplink share of hot samples
		drops          uint64
		peakBuf        float64
		avgDownUtil    float64
		avgUpUtil      float64
	}
	measure := func(app workload.App) shape {
		rack := topo.Default(32)
		n, err := New(Config{Rack: rack, Params: workload.DefaultParams(app), Seed: 12345})
		if err != nil {
			t.Fatal(err)
		}
		const interval = 25 * simclock.Microsecond
		const dur = 500 * simclock.Millisecond
		samples := int(simclock.Duration(dur).Ticks(interval))
		nports := rack.NumPorts()
		prev := make([]uint64, nports)
		hot := make([][]bool, nports)
		var sumDownUtil, sumUpUtil float64
		var peak float64
		for i := range hot {
			hot[i] = make([]bool, 0, samples)
		}
		// Warmup to reach steady state.
		n.Run(50 * simclock.Millisecond)
		for p := 0; p < nports; p++ {
			prev[p] = n.Switch().Port(p).Bytes(asic.TX)
		}
		n.Switch().ReadPeakBufferAndClear()
		for i := 0; i < samples; i++ {
			n.Run(interval)
			for p := 0; p < nports; p++ {
				cur := n.Switch().Port(p).Bytes(asic.TX)
				util := float64(cur-prev[p]) * 8 / (float64(n.Switch().Port(p).Speed()) * interval.Seconds())
				prev[p] = cur
				hot[p] = append(hot[p], util > 0.5)
				if rack.IsUplink(p) {
					sumUpUtil += util
				} else {
					sumDownUtil += util
				}
			}
			if pk := n.Switch().ReadPeakBufferAndClear(); pk > peak {
				peak = pk
			}
		}
		var s shape
		var downSamples, upSamples, downHot, upHot float64
		var runs, runLen float64
		for p := 0; p < nports; p++ {
			inRun := false
			for _, h := range hot[p] {
				if rack.IsUplink(p) {
					upSamples++
					if h {
						upHot++
					}
				} else {
					downSamples++
					if h {
						downHot++
					}
				}
				if h {
					runLen++
					if !inRun {
						runs++
						inRun = true
					}
				} else {
					inRun = false
				}
			}
		}
		s.downHot = downHot / downSamples
		s.upHot = upHot / upSamples
		if runs > 0 {
			s.meanRun = runLen / runs
		}
		if downHot+upHot > 0 {
			s.upShare = upHot / (downHot + upHot)
		}
		s.drops = n.Switch().TotalDropped()
		s.peakBuf = peak
		s.avgDownUtil = sumDownUtil / downSamples
		s.avgUpUtil = sumUpUtil / upSamples
		return s
	}

	web := measure(workload.Web)
	cache := measure(workload.Cache)
	hadoop := measure(workload.Hadoop)
	t.Logf("web:    downHot=%.4f upHot=%.4f meanRun=%.2f upShare=%.3f drops=%d peak=%.0f avgDown=%.3f avgUp=%.3f", web.downHot, web.upHot, web.meanRun, web.upShare, web.drops, web.peakBuf, web.avgDownUtil, web.avgUpUtil)
	t.Logf("cache:  downHot=%.4f upHot=%.4f meanRun=%.2f upShare=%.3f drops=%d peak=%.0f avgDown=%.3f avgUp=%.3f", cache.downHot, cache.upHot, cache.meanRun, cache.upShare, cache.drops, cache.peakBuf, cache.avgDownUtil, cache.avgUpUtil)
	t.Logf("hadoop: downHot=%.4f upHot=%.4f meanRun=%.2f upShare=%.3f drops=%d peak=%.0f avgDown=%.3f avgUp=%.3f", hadoop.downHot, hadoop.upHot, hadoop.meanRun, hadoop.upShare, hadoop.drops, hadoop.peakBuf, hadoop.avgDownUtil, hadoop.avgUpUtil)

	// Ordering targets from the paper (loose bands; exact values are
	// checked against EXPERIMENTS.md by the figure harness):
	// hot-time ordering: hadoop > cache > web (Fig 6, Table 2 stationary).
	hotOf := func(s shape) float64 { return (s.downHot*16 + s.upHot*4) / 20 }
	if !(hotOf(hadoop) > hotOf(cache) && hotOf(cache) > hotOf(web)) {
		t.Errorf("hot-fraction ordering wrong: web=%.4f cache=%.4f hadoop=%.4f", hotOf(web), hotOf(cache), hotOf(hadoop))
	}
	// Cache bursts live on uplinks; web/hadoop on downlinks (Fig 9).
	if cache.upShare < 0.5 {
		t.Errorf("cache uplink share = %.3f, want > 0.5", cache.upShare)
	}
	if web.upShare > 0.35 || hadoop.upShare > 0.45 {
		t.Errorf("web/hadoop uplink shares too high: %.3f / %.3f", web.upShare, hadoop.upShare)
	}
	// Hadoop puts the most pressure on the buffer (Fig 10).
	if !(hadoop.peakBuf > cache.peakBuf && hadoop.peakBuf > web.peakBuf) {
		t.Errorf("hadoop peak buffer %.0f should dominate (cache %.0f, web %.0f)", hadoop.peakBuf, cache.peakBuf, web.peakBuf)
	}
}
