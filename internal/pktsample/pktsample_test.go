package pktsample

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

var fullMTU = asic.TrafficProfile{0, 0, 0, 0, 0, 1}

func TestConstructorGuards(t *testing.T) {
	for _, f := range []func(){
		func() { NewSampler(0, rng.New(1)) },
		func() { NewSampler(100, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSamplingRateUnbiased(t *testing.T) {
	// Feed exactly 3M MTU packets; at 1-in-1000 we expect ~3000 samples.
	s := NewSampler(1000, rng.New(7))
	const perTick = 1500 * 100 // 100 packets
	for i := 0; i < 30000; i++ {
		s.Observe(simclock.Time(i), 0, perTick, fullMTU)
	}
	want := s.SeenPackets() / 1000
	got := float64(len(s.Records()))
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("sampled %v packets, want ~%v", got, want)
	}
}

func TestObserveIgnoresZero(t *testing.T) {
	s := NewSampler(10, rng.New(1))
	s.Observe(0, 0, 0, fullMTU)
	s.Observe(0, 0, -5, fullMTU)
	if len(s.Records()) != 0 || s.SeenPackets() != 0 {
		t.Error("zero/negative traffic produced samples")
	}
}

func TestEstimateUtilizationRecoversAverage(t *testing.T) {
	// 50% of 10G for 1 second, sampled 1-in-100: the 1-second estimate
	// should recover ~0.5, per-25µs estimates should be mostly empty.
	const speed = uint64(10e9)
	s := NewSampler(100, rng.New(3))
	tick := 5 * simclock.Microsecond
	bytesPerTick := float64(speed) / 8 * tick.Seconds() * 0.5
	end := simclock.Epoch.Add(simclock.Second)
	for now := simclock.Epoch; now.Before(end); now = now.Add(tick) {
		s.Observe(now, 2, bytesPerTick, fullMTU)
	}
	// Coarse: one 1s interval.
	coarse, err := EstimateUtilization(s.Records(), 2, speed, 100, simclock.Epoch, end, simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) != 1 {
		t.Fatalf("coarse bins = %d", len(coarse))
	}
	if math.Abs(coarse[0].Estimate-0.5) > 0.05 {
		t.Errorf("coarse estimate = %v, want ~0.5", coarse[0].Estimate)
	}
	// Fine: 25µs intervals are almost all empty at this rate.
	fine, err := EstimateUtilization(s.Records(), 2, speed, 100, simclock.Epoch, end, 25*simclock.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage(fine)
	if cov.EmptyFrac < 0.5 {
		t.Errorf("fine empty fraction = %v, want most intervals empty", cov.EmptyFrac)
	}
}

func TestEstimateFiltersPortAndRange(t *testing.T) {
	records := []Record{
		{Time: 10, Port: 1, Size: 1500},
		{Time: 20, Port: 2, Size: 1500}, // wrong port
		{Time: -5, Port: 1, Size: 1500}, // before range
	}
	est, err := EstimateUtilization(records, 1, 10e9, 10, 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range est {
		total += e.SampledPackets
	}
	if total != 1 {
		t.Errorf("counted %d records, want 1", total)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateUtilization(nil, 0, 1, 1, 0, 100, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := EstimateUtilization(nil, 0, 1, 1, 100, 100, 10); err == nil {
		t.Error("empty range accepted")
	}
}

func TestCoverageEmpty(t *testing.T) {
	st := Coverage(nil)
	if st.Intervals != 0 || st.EmptyFrac != 0 {
		t.Errorf("empty coverage = %+v", st)
	}
}

func TestRelativeError(t *testing.T) {
	est := []UtilEstimate{{Estimate: 0.5}, {Estimate: 0.2}, {Estimate: 0}}
	truth := []float64{0.5, 0.1, 0.0}
	// Only the first two qualify at minUtil 0.05; errors are 0 and 1.
	got := RelativeError(est, truth, 0.05)
	want := math.Sqrt((0*0 + 1*1) / 2.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("rel error = %v, want %v", got, want)
	}
	if !math.IsNaN(RelativeError(est, truth, 10)) {
		t.Error("no qualifying intervals should give NaN")
	}
}

// TestBaselineBlindToMicrobursts is the §2 baseline claim end-to-end: tap
// a simulated hadoop rack with 1-in-30000 sampling and show that (a) the
// long-term utilization estimate is in the right ballpark while (b) at
// 25 µs virtually every interval has no samples at all.
func TestBaselineBlindToMicrobursts(t *testing.T) {
	net, err := simnet.New(simnet.Config{
		Rack:   topo.Default(16),
		Params: workload.DefaultParams(workload.Hadoop),
		Seed:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(DefaultRate, rng.New(5))
	const port = 0
	var trueTotalBytes float64
	net.SetTxObserver(func(now simclock.Time, p int, nbytes float64, profile asic.TrafficProfile) {
		sampler.Observe(now, p, nbytes, profile)
		trueTotalBytes += nbytes
	})
	dur := 400 * simclock.Millisecond
	net.Run(dur)

	// (a) The rack-wide long-term volume estimate has the right order of
	// magnitude: sum of sampled bytes × N vs. ground truth. (Per-port
	// estimates over 400ms carry only a handful of samples — exactly the
	// baseline's weakness — so aggregate for statistical power.)
	var sampledBytes float64
	for _, r := range sampler.Records() {
		sampledBytes += float64(r.Size)
	}
	estTotal := sampledBytes * float64(DefaultRate)
	if estTotal < trueTotalBytes/2 || estTotal > trueTotalBytes*2 {
		t.Errorf("rack-wide estimate %v vs truth %v", estTotal, trueTotalBytes)
	}
	// (b) At 25µs the baseline is blind.
	fine, err := EstimateUtilization(sampler.Records(), port, net.Switch().Port(port).Speed(), DefaultRate,
		simclock.Epoch, simclock.Epoch.Add(dur), 25*simclock.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage(fine)
	if cov.EmptyFrac < 0.95 {
		t.Errorf("empty fraction at 25µs = %v, want ≈1 (sampling cannot see µbursts)", cov.EmptyFrac)
	}
}
