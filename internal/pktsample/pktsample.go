// Package pktsample implements the packet-sampling measurement baseline
// the paper contrasts against (§2): sFlow-style sampling where "only one
// packet in thousands or tens of thousands [is] recorded — Facebook, for
// instance, typically samples packets with a probability of 1 in 30,000."
//
// The sampler taps the simulator's per-tick port traffic, draws sampled
// packet records with the configured probability, and offers estimators
// that reconstruct utilization from those records the way an sFlow
// collector would (scaling each sampled packet by the sampling rate).
//
// The point of the baseline — demonstrated by BenchmarkBaselinePacketSampling
// and the pktsample tests — is the paper's motivating claim: sampled
// estimates converge over minutes and recover long-term traffic shares,
// but at microburst timescales almost every interval contains zero
// sampled packets, so µbursts are invisible.
package pktsample

import (
	"fmt"
	"math"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// Record is one sampled packet, the sFlow datagram payload equivalent.
type Record struct {
	// Time is when the packet was forwarded.
	Time simclock.Time
	// Port is the egress port.
	Port int
	// Size is the packet size in bytes.
	Size int
}

// Sampler draws packet samples from offered traffic at a fixed 1-in-N
// probability. It is driven per simulation tick via Observe.
type Sampler struct {
	rate    float64 // sampling probability (1/N)
	n       uint64  // the N in 1-in-N
	src     *rng.Source
	records []Record

	// remainders carry expected sampled-packet fractions per port so
	// sampling is unbiased even when a tick's expected count is ≪ 1.
	seenPackets float64
}

// DefaultRate is the production sampling rate the paper quotes: 1 in
// 30,000 packets.
const DefaultRate uint64 = 30000

// NewSampler returns a sampler with probability 1/n. It panics if n == 0.
func NewSampler(n uint64, src *rng.Source) *Sampler {
	if n == 0 {
		panic("pktsample: zero sampling divisor")
	}
	if src == nil {
		panic("pktsample: nil random source")
	}
	return &Sampler{rate: 1 / float64(n), n: n, src: src}
}

// N returns the sampling divisor (the N in 1-in-N).
func (s *Sampler) N() uint64 { return s.n }

// Observe accounts nbytes of traffic leaving port during the tick ending
// at now, spread across packet sizes per profile, and samples packets from
// it. The number of sampled packets in a tick is drawn Poisson with mean
// packets × rate, which matches independent per-packet coin flips.
func (s *Sampler) Observe(now simclock.Time, port int, nbytes float64, profile asic.TrafficProfile) {
	if nbytes <= 0 {
		return
	}
	for bin, frac := range profile {
		if frac == 0 {
			continue
		}
		size := asic.RepresentativeSize(bin)
		pkts := nbytes * frac / size
		s.seenPackets += pkts
		k := s.src.Poisson(pkts * s.rate)
		for i := 0; i < k; i++ {
			s.records = append(s.records, Record{Time: now, Port: port, Size: int(size)})
		}
	}
}

// Records returns all sampled packets so far. The slice is owned by the
// sampler.
func (s *Sampler) Records() []Record { return s.records }

// SeenPackets returns the (fractional) ground-truth packet count observed.
func (s *Sampler) SeenPackets() float64 { return s.seenPackets }

// UtilEstimate is a per-interval utilization estimate reconstructed from
// sampled packets.
type UtilEstimate struct {
	Start simclock.Time
	// Estimate is the reconstructed utilization (scaled by the sampling
	// rate), in fraction of line rate.
	Estimate float64
	// SampledPackets is how many sampled records landed in the interval.
	SampledPackets int
}

// EstimateUtilization reconstructs a port's utilization time series at the
// given interval from sampled records, exactly as an sFlow collector
// would: each sampled packet stands for N packets of its size.
func EstimateUtilization(records []Record, port int, speedBps uint64, n uint64,
	start, end simclock.Time, interval simclock.Duration) ([]UtilEstimate, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("pktsample: non-positive interval %v", interval)
	}
	if end <= start {
		return nil, fmt.Errorf("pktsample: empty time range")
	}
	bins := int(end.Sub(start) / interval)
	if bins <= 0 {
		bins = 1
	}
	out := make([]UtilEstimate, bins)
	for i := range out {
		out[i].Start = start.Add(simclock.Duration(i) * interval)
	}
	lineBytesPerInterval := float64(speedBps) / 8 * interval.Seconds()
	for _, r := range records {
		if r.Port != port || r.Time.Before(start) || !r.Time.Before(end) {
			continue
		}
		bi := int(r.Time.Sub(start) / interval)
		if bi >= bins {
			bi = bins - 1
		}
		out[bi].SampledPackets++
		out[bi].Estimate += float64(r.Size) * float64(n) / lineBytesPerInterval
	}
	return out, nil
}

// CoverageStats summarizes how well sampling resolves a timescale.
type CoverageStats struct {
	// Intervals is the number of estimation intervals.
	Intervals int
	// EmptyFrac is the fraction of intervals containing zero sampled
	// packets — at µburst timescales this approaches 1 and the estimator
	// is blind.
	EmptyFrac float64
	// MeanSamplesPerInterval is the average sampled-packet count.
	MeanSamplesPerInterval float64
}

// Coverage computes CoverageStats over a set of estimates.
func Coverage(estimates []UtilEstimate) CoverageStats {
	st := CoverageStats{Intervals: len(estimates)}
	if len(estimates) == 0 {
		return st
	}
	empty := 0
	var total float64
	for _, e := range estimates {
		if e.SampledPackets == 0 {
			empty++
		}
		total += float64(e.SampledPackets)
	}
	st.EmptyFrac = float64(empty) / float64(len(estimates))
	st.MeanSamplesPerInterval = total / float64(len(estimates))
	return st
}

// RelativeError compares estimated vs true utilization series (same
// binning) and returns the root-mean-square relative error over intervals
// where the truth is at least minUtil. NaN when no interval qualifies.
func RelativeError(estimates []UtilEstimate, truth []float64, minUtil float64) float64 {
	n := len(estimates)
	if len(truth) < n {
		n = len(truth)
	}
	var ss float64
	var count int
	for i := 0; i < n; i++ {
		if truth[i] < minUtil {
			continue
		}
		rel := (estimates[i].Estimate - truth[i]) / truth[i]
		ss += rel * rel
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return math.Sqrt(ss / float64(count))
}
