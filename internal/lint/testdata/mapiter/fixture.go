// Package mapfix seeds mapiter violations: direct ranges over maps keyed
// by analysis.SeriesKey, whose iteration order is nondeterministic.
package mapfix

import "mburst/internal/analysis"

// Sum ranges the map directly: nondeterministic iteration order.
func Sum(m map[analysis.SeriesKey]int) int {
	total := 0
	for _, v := range m { // want `nondeterministic`
		total += v
	}
	return total
}

// table is a named map type; the rule sees through the name.
type table map[analysis.SeriesKey][]float64

// Lens ranges the named type.
func Lens(t table) []int {
	var out []int
	for _, s := range t { // want `nondeterministic`
		out = append(out, len(s))
	}
	return out
}

// SumSorted is the sanctioned form.
func SumSorted(m map[analysis.SeriesKey]int) int {
	total := 0
	for _, k := range analysis.SortedKeys(m) {
		total += m[k]
	}
	return total
}

// Counted documents a justified order-free loop.
func Counted(m map[analysis.SeriesKey]int) int {
	n := 0
	//lint:ignore mapiter pure count; iteration order is unobservable
	for range m {
		n++
	}
	return n
}

// OtherKeys is out of scope: the key type is not SeriesKey.
func OtherKeys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
