// Package randfix seeds globalrand violations: any math/rand package
// function outside internal/rng, global-source conveniences and local
// constructors alike.
package randfix

import "math/rand"

// Bad uses the global source, which makes results depend on call ordering
// across the whole program.
func Bad() int {
	return rand.Intn(10) // want `math/rand\.Intn outside internal/rng`
}

// AlsoBad constructs a local generator, bypassing internal/rng's seeded,
// splittable streams.
func AlsoBad() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `math/rand\.New outside` `math/rand\.NewSource outside`
}

// StoredRef is flagged even without a call: the reference itself routes
// randomness around internal/rng.
var StoredRef = rand.Float64 // want `math/rand\.Float64 outside`

// UseExisting is fine: methods on a caller-supplied generator are the
// owner's responsibility.
func UseExisting(r *rand.Rand) int {
	return r.Intn(10)
}
