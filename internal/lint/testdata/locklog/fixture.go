// Package lockfix seeds locklog violations: calling a sibling method that
// re-acquires the receiver's held mutex.
package lockfix

import "sync"

// Box guards n with mu; Snapshot and LogState both acquire it.
type Box struct {
	mu  sync.Mutex
	aux sync.Mutex
	n   int
}

// Snapshot acquires mu.
func (b *Box) Snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// LogState is the logging-helper shape from the PR 1 incident.
func (b *Box) LogState(sink *[]int) {
	b.mu.Lock()
	*sink = append(*sink, b.n)
	b.mu.Unlock()
}

// Bad holds mu across a call to Snapshot, which re-acquires it.
func (b *Box) Bad() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n + b.Snapshot() // want `Bad calls b\.Snapshot while mu is held`
}

// BadLog deadlocks on the logging helper while holding mu explicitly.
func (b *Box) BadLog(sink *[]int) {
	b.mu.Lock()
	b.LogState(sink) // want `BadLog calls b\.LogState while mu is held`
	b.mu.Unlock()
}

// Good releases mu before calling the sibling.
func (b *Box) Good() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n + b.Snapshot()
}

// DisjointLocks holds aux, not mu; calling Snapshot is safe.
func (b *Box) DisjointLocks() int {
	b.aux.Lock()
	defer b.aux.Unlock()
	return b.Snapshot()
}
