// Package spanfix is the golden fixture for the spanend rule: every
// ptrace span Start must be matched by an End (or deferred End) on all
// return paths.
package spanfix

import (
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
)

// good: the straight-line Start/End pair.
func good(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	sp := tr.Start(ptrace.StagePollRead, at).SetBatch(8, 100)
	sp.End(at.Add(simclock.Microsecond))
}

// goodDefer: a deferred End covers every return path.
func goodDefer(t *ptrace.Tracer, at simclock.Time) bool {
	tr := t.Batch(1, 0, at)
	sp := tr.Start(ptrace.StageWireEncode, at)
	defer sp.End(at.Add(simclock.Microsecond))
	if at > simclock.Epoch {
		return true
	}
	return false
}

// goodInline: a chain closed by .End needs no variable at all.
func goodInline(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	tr.Start(ptrace.StageEpochGate, at).SetVerdict(ptrace.VerdictAccept).End(at)
}

// goodEscape: a span handed to another function moves ownership with it.
func goodEscape(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	finish(tr.Start(ptrace.StageArchiveWrite, at), at)
}

func finish(sp *ptrace.Span, at simclock.Time) {
	sp.End(at.Add(simclock.Microsecond))
}

// discarded: the Start result is thrown away, so nothing can End it.
func discarded(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	tr.Start(ptrace.StagePollRead, at) // want `discarded`
}

// neverEnded: the span is decorated but never Ended.
func neverEnded(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	sp := tr.Start(ptrace.StagePollRead, at) // want `never Ended`
	sp.SetBatch(1, 2)
}

// earlyReturnLeak: the error path returns without Ending the span.
func earlyReturnLeak(t *ptrace.Tracer, at simclock.Time, fail bool) {
	tr := t.Batch(1, 0, at)
	sp := tr.Start(ptrace.StageClientSend, at)
	if fail {
		return // want `return leaks ptrace span sp`
	}
	sp.End(at.Add(simclock.Microsecond))
}

// suppressed: the directive accepts the leak with a reason.
func suppressed(t *ptrace.Tracer, at simclock.Time, fail bool) {
	tr := t.Batch(1, 0, at)
	sp := tr.Start(ptrace.StageServerIngest, at)
	if fail {
		//lint:ignore spanend demonstration of an accepted leak
		return
	}
	sp.End(at.Add(simclock.Microsecond))
}
