// Package ignorefix exercises //lint:ignore suppression semantics: valid
// suppressions on the preceding or same line, and the three directive
// errors (unknown rule, missing reason, stale directive), which are
// reported under the reserved "lint" rule.
package ignorefix

import "context"

// Suppressed is silenced by a directive on the preceding line.
func Suppressed() context.Context {
	//lint:ignore ctxroot fixture demonstrates a valid suppression
	return context.Background()
}

// SameLine is silenced by a directive sharing the offending line.
func SameLine() context.Context {
	return context.Background() //lint:ignore ctxroot same-line suppression
}

// Unsuppressed keeps its finding.
func Unsuppressed() context.Context {
	return context.Background() // want `roots a new context`
}

// WrongRule names a rule that does not exist, so nothing is suppressed
// and the directive itself is a finding.
func WrongRule() context.Context {
	/*lint:ignore nosuchrule the rule name is wrong*/ // want `unknown rule "nosuchrule"`
	return context.Background()                       // want `roots a new context`
}

// MissingReason omits the mandatory justification; a malformed directive
// suppresses nothing, so the violation below it still reports.
func MissingReason() context.Context {
	/*lint:ignore ctxroot*/     // want `is missing a reason`
	return context.Background() // want `roots a new context`
}

// Stale suppresses nothing: the violation it once excused is gone.
func Stale(ctx context.Context) context.Context {
	/*lint:ignore ctxroot nothing to suppress here anymore*/ // want `stale //lint:ignore`
	return ctx
}
