// Package hafix seeds hotalloc findings: an annotated MBW3-style encode
// path with an injected fmt.Sprintf, unguarded allocation, callee
// provenance, interface boxing, closures — plus the recognized reuse
// and error-exit idioms that must stay clean, and directive validation
// (misplaced and stale //lint:hotpath).
package hafix

import "fmt"

// AppendBatch is the MBW3-style append path: self-appends reuse the
// caller's buffer, but the injected fmt.Sprintf and the unproven helper
// are violations.
//
//lint:hotpath seeded: encode path must not allocate per batch
func AppendBatch(dst []byte, v uint64) []byte {
	dst = append(dst, byte(v))                    // reuse pattern: allowed
	label(v)                                      // want `calls hafix\.label, which is neither //lint:hotpath nor proven allocation-free`
	return append(dst, fmt.Sprintf("v=%d", v)...) // want `calls fmt\.Sprintf, which is not on the allocation-free list`
}

func label(v uint64) string { return fmt.Sprintf("%d", v) }

// Decode shows the cap-guard exemption and names exact offending
// expressions otherwise.
//
//lint:hotpath seeded: decode path reuses its buffer
func Decode(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		dst = make([]uint64, n) // cap-guarded growth: allowed
	}
	tmp := make([]byte, 4) // want `make\(\[\]byte, 4\) allocates without a cap-guard`
	_ = tmp
	box(n) // want `boxes int into interface`
	return dst[:n]
}

func box(v any) {}

// Observe seeds the escape-class constructs.
//
//lint:hotpath seeded: no closures or goroutines on the hot path
func Observe(fn func()) {
	go fn()        // want `starting a goroutine allocates` `call through a func value`
	f := func() {} // want `closure literal may escape`
	f()            // want `call through a func value cannot be proven allocation-free`
}

// Checked allocates only on its error exit, which is allowed: the
// steady-state contract concerns the success path.
//
//lint:hotpath seeded: error exits may allocate
func Checked(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty buffer") // error exit: allowed
	}
	return int(b[0]), nil
}

// Header builds struct and array values, which stay off the heap.
//
//lint:hotpath seeded: value composites are fine
func Header(v uint64) [2]uint64 {
	h := pair{a: v, b: v}      // struct literal: allowed
	return [2]uint64{h.a, h.b} // array literal: allowed
}

type pair struct{ a, b uint64 }

// notCalled is annotated but unreachable from every exported function,
// so the annotation is stale.
//
//lint:hotpath nothing reaches this // want `stale //lint:hotpath: hafix\.notCalled is not reachable`
func notCalled() {}

func misplacedHolder() {
	//lint:hotpath directives belong on function doc comments // want `//lint:hotpath must be in a function's doc comment`
	_ = 0
}
