// Package metricfix seeds metricname violations against the real
// obs.Registry type, so selector resolution goes through go/types.
package metricfix

import "mburst/internal/obs"

// Register exercises scheme, literal, and uniqueness checks.
func Register(reg *obs.Registry) {
	reg.Counter("mburst_fix_total", "Conforming name.")
	reg.Gauge("bad-name", "Scheme violation.") // want `"bad-name" does not match`
	reg.Histogram("mburst_fix_hist_us", "Conforming histogram.", obs.DefLatencyBucketsUS)
	reg.GaugeFunc("Mburst_fix_case", "Upper case breaks the scheme.", func() float64 { return 0 }) // want `"Mburst_fix_case" does not match`
	reg.Counter("mburst_fix_total", "Duplicate registration.")                                     // want `"mburst_fix_total" already registered`
	name := "mburst_fix_dynamic"
	reg.Gauge(name, "Computed names defeat static checking.") // want `must be a string literal`
}
