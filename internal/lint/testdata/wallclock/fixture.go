// Package wallfix seeds wallclock violations. The test loads it under a
// sim-domain import path (mburst/internal/simnet/wallfix).
package wallfix

import "time"

// Sleeper shows the injectable escape hatch: referencing time.Sleep as a
// value (to store in a Sleep field) is allowed; only calls are flagged.
var Sleeper = time.Sleep

// Clock is the other sanctioned shape: a field the caller injects.
type Clock struct {
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Bad exercises every flagged call form.
func Bad() time.Time {
	t := time.Now()                 // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond)    // want `wall-clock time\.Sleep`
	<-time.After(time.Millisecond)  // want `wall-clock time\.After`
	_ = time.NewTimer(time.Second)  // want `wall-clock time\.NewTimer`
	_ = time.NewTicker(time.Second) // want `wall-clock time\.NewTicker`
	_ = time.Since(t)               // want `wall-clock time\.Since`
	return t
}

// Good takes time through the injected clock only.
func Good(c Clock) time.Time {
	c.Sleep(time.Millisecond)
	return c.Now()
}
