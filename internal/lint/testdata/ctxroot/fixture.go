// Package ctxfix seeds ctxroot violations. The test loads it under a
// non-main library import path.
package ctxfix

import "context"

// Bad re-roots the context tree, detaching itself from the caller's
// cancellation.
func Bad() context.Context {
	return context.Background() // want `context\.Background\(\) roots a new context`
}

// AlsoBad does the same with TODO.
func AlsoBad() context.Context {
	return context.TODO() // want `context\.TODO\(\) roots a new context`
}

// Allowed demonstrates the sanctioned escape hatch for deliberate
// fallbacks.
func Allowed(ctx context.Context) context.Context {
	if ctx == nil {
		//lint:ignore ctxroot fixture demonstrates the sanctioned fallback
		ctx = context.Background()
	}
	return ctx
}
