// Package regressfix seeds exactly one violation per mblint rule. The
// regression test asserts exact file:line:col positions, so analyzer
// refactors cannot silently stop detecting a rule. Editing this file
// means updating the expected positions in regress_test.go.
package regressfix

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
)

// Guarded exists for the mutexcopy and locklog seeds.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot acquires mu (locklog callee).
func (g *Guarded) Snapshot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Locklog holds mu across a re-acquiring sibling call.
func (g *Guarded) Locklog() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.Snapshot()
}

// Mutexcopy passes the lock by value.
func Mutexcopy(g Guarded) int {
	return g.n
}

// Wallclock reads the wall clock in a sim-domain package.
func Wallclock() time.Time {
	return time.Now()
}

// Globalrand uses the global math/rand source.
func Globalrand() int {
	return rand.Intn(6)
}

// Ctxroot re-roots the context tree.
func Ctxroot() context.Context {
	return context.Background()
}

// Metricname registers outside the mburst_* scheme.
func Metricname(reg *obs.Registry) {
	reg.Counter("regress_bad_name", "Scheme violation.")
}

// Errfmt capitalizes an error string.
var Errfmt = errors.New("Seeded capitalized error")

// Mapiter ranges a SeriesKey-keyed map directly.
func Mapiter(m map[analysis.SeriesKey]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Spanend discards a Start result, so the span can never End.
func Spanend(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	tr.Start(ptrace.StagePollRead, at)
}
