// Package regressfix seeds exactly one violation per mblint rule. The
// regression test asserts exact file:line:col positions, so analyzer
// refactors cannot silently stop detecting a rule. Editing this file
// means updating the expected positions in regress_test.go.
package regressfix

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
)

// Guarded exists for the mutexcopy and locklog seeds.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot acquires mu (locklog callee).
func (g *Guarded) Snapshot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Locklog holds mu across a re-acquiring sibling call.
func (g *Guarded) Locklog() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.Snapshot()
}

// Mutexcopy passes the lock by value.
func Mutexcopy(g Guarded) int {
	return g.n
}

// Wallclock reads the wall clock in a sim-domain package.
func Wallclock() time.Time {
	return time.Now()
}

// Globalrand uses the global math/rand source.
func Globalrand() int {
	return rand.Intn(6)
}

// Ctxroot re-roots the context tree.
func Ctxroot() context.Context {
	return context.Background()
}

// Metricname registers outside the mburst_* scheme.
func Metricname(reg *obs.Registry) {
	reg.Counter("regress_bad_name", "Scheme violation.")
}

// Errfmt capitalizes an error string.
var Errfmt = errors.New("Seeded capitalized error")

// Mapiter ranges a SeriesKey-keyed map directly.
func Mapiter(m map[analysis.SeriesKey]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Spanend discards a Start result, so the span can never End.
func Spanend(t *ptrace.Tracer, at simclock.Time) {
	tr := t.Batch(1, 0, at)
	tr.Start(ptrace.StagePollRead, at)
}

// ClockEntry reaches the wall clock two calls down; clockflow flags the
// innermost call of the chain (clockHop's call into hiddenClock).
func ClockEntry() time.Duration {
	return clockHop()
}

func clockHop() time.Duration {
	return hiddenClock()
}

func hiddenClock() time.Duration {
	//lint:ignore wallclock seeded clockflow sink; the chain is reported at the caller
	return time.Since(time.Time{})
}

// HotSerialize is hotpath-annotated but allocates a fresh buffer.
//
//lint:hotpath seeded hotalloc violation
func HotSerialize(v uint64) []byte {
	buf := make([]byte, 8)
	buf[0] = byte(v)
	return buf
}

// lockOrder seeds an inverted acquisition pair.
type lockOrder struct {
	a sync.Mutex
	b sync.Mutex
}

// LockAB takes a then b.
func (l *lockOrder) LockAB() {
	l.a.Lock()
	l.b.Lock()
	l.b.Unlock()
	l.a.Unlock()
}

// LockBA takes b then a: the inversion.
func (l *lockOrder) LockBA() {
	l.b.Lock()
	l.a.Lock()
	l.a.Unlock()
	l.b.Unlock()
}
