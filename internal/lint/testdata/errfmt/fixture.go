// Package errfix seeds errfmt violations: capitalized error strings and
// error values formatted without %w.
package errfix

import (
	"errors"
	"fmt"
)

// ErrBad starts with an ordinary capitalized word.
var ErrBad = errors.New("Bad thing happened") // want `error string "Bad" is capitalized`

// ErrOK composes correctly after "...: ".
var ErrOK = errors.New("bad thing happened")

// ErrInitialism is exempt: the first word is an initialism.
var ErrInitialism = errors.New("EOF while reading frame")

// ErrIdentifier is exempt: the first word is a camel-case identifier.
var ErrIdentifier = errors.New("FanIn out of range")

// ErrConcat is checked through the concatenation to the leading literal.
var ErrConcat = errors.New("Concatenated " + "strings") // want `error string "Concatenated" is capitalized`

// Wrap loses the cause: callers cannot errors.Is through %v.
func Wrap(err error) error {
	return fmt.Errorf("replaying window: %v", err) // want `without %w`
}

// WrapOK keeps the chain intact.
func WrapOK(err error) error {
	return fmt.Errorf("replaying window: %w", err)
}

// NoErrorArgs formats plain data; nothing to wrap.
func NoErrorArgs(n int) error {
	return fmt.Errorf("short read: %d bytes", n)
}
