// Package mufix seeds mutexcopy violations: lock-bearing structs passed
// by value in receivers, parameters, and results.
package mufix

import "sync"

// Guarded carries its own lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested buries the lock one struct deep; the walk still finds it.
type Nested struct {
	g Guarded
}

// Bad copies the receiver, so it locks a throwaway mutex.
func (g Guarded) Bad() int { // want `receiver of Bad passes`
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Good takes a pointer.
func (g *Guarded) Good() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Take copies the lock in through a parameter.
func Take(g Guarded) int { // want `parameter of Take passes`
	return g.Good()
}

// Give copies the lock out through a result.
func Give() Nested { // want `result of Give passes`
	return Nested{}
}

// TakePtr is fine.
func TakePtr(g *Guarded) int {
	return g.Good()
}
