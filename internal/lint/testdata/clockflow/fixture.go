// Package cflowfix seeds clockflow findings: direct wall-clock reads in
// an extended-domain package (collector is not in wallclock's sim
// domain, but is in clockflow's) and transitive chains that reach the
// clock or the global math/rand source through calls, including
// interface dispatch.
package cflowfix

import (
	"math/rand"
	"time"
)

// DirectRead reads the clock directly: the per-package wallclock rule
// ignores collector, clockflow does not.
func DirectRead() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now in mburst/internal/collector/cflowfix`
}

// Entry is two hops above the sink. The chain is flagged once, at the
// call that commits to it (mid's call into leafClock), not at Entry.
func Entry() time.Duration { return mid() }

func mid() time.Duration {
	return leafClock() // want `cflowfix\.mid reaches time\.Since: cflowfix\.mid -> cflowfix\.leafClock \(fixture\.go:\d+\) -> time\.Since`
}

func leafClock() time.Duration {
	return time.Since(time.Time{}) // want `wall-clock time\.Since`
}

// RollEntry reaches the global math/rand source through a helper; the
// direct call in roll is globalrand's finding, the chain is clockflow's.
func RollEntry() int {
	return roll() // want `reaches rand\.Intn.*derive randomness with rng\.New/Split`
}

func roll() int { return rand.Intn(6) }

type source interface{ sample() int64 }

type clockSource struct{}

func (clockSource) sample() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now`
}

// Collect reaches the clock through interface dispatch: method-set
// resolution fans the call out to clockSource.sample.
func Collect(s source) int64 {
	return s.sample() // want `reaches time\.Now`
}

// now is a value reference, not a call: the injectable-default pattern
// stays legal.
var now = time.Now

// Injected takes its clock as a parameter; a call through a func value
// is not taint — the injection point is exactly the sanctioned fix.
func Injected(clock func() time.Time) time.Time {
	return clock()
}

// Seeded constructs an explicitly seeded source: rand constructors are
// not sinks (the seed is the determinism).
func Seeded() *rand.Rand { return rand.New(rand.NewSource(1)) }
