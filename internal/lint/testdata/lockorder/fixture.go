// Package lofix seeds lock-order cycles: a direct inverted pair (ab
// takes a then b, ba takes b then a) and an interprocedural variant
// where the second lock of the inversion is taken inside a callee. A
// consistent pair of helpers (ordered, ordered2) must stay clean.
package lofix

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock-order cycle among lofix\.pair\.a, lofix\.pair\.b`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

type inter struct {
	c sync.Mutex
	d sync.Mutex
}

func (i *inter) lockD() {
	i.d.Lock()
	i.d.Unlock()
}

func (i *inter) cThenD() {
	i.c.Lock()
	defer i.c.Unlock()
	i.lockD() // want `lock-order cycle among lofix\.inter\.c, lofix\.inter\.d.*via lofix\.\(\*inter\)\.lockD`
}

func (i *inter) dThenC() {
	i.d.Lock()
	defer i.d.Unlock()
	i.c.Lock()
	i.c.Unlock()
}

type clean struct {
	first  sync.Mutex
	second sync.Mutex
}

// ordered and ordered2 take the pair in the same global order from two
// different functions: consistent, no finding.
func (c *clean) ordered() {
	c.first.Lock()
	c.second.Lock()
	c.second.Unlock()
	c.first.Unlock()
}

func (c *clean) ordered2() {
	c.first.Lock()
	defer c.first.Unlock()
	c.second.Lock()
	c.second.Unlock()
}
