package lint

import (
	"go/ast"
)

func newCtxroot() *Analyzer {
	a := &Analyzer{
		Name: "ctxroot",
		Doc: "Contexts are threaded from the entry point, never re-rooted: " +
			"context.Background()/TODO() in library code detaches work from the " +
			"caller's cancellation and deadline, so SIGINT stops the campaign " +
			"runner but not the subtree that re-rooted itself. Only main packages " +
			"(cmd/*, examples/*) and tests may mint root contexts; deliberate " +
			"nil-ctx fallbacks carry a //lint:ignore ctxroot annotation.",
	}
	a.Run = func(p *Pass) {
		if p.Pkg != nil && p.Pkg.Name() == "main" {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if !isPkgFunc(fn, "context", "Background") && !isPkgFunc(fn, "context", "TODO") {
					return true
				}
				if isTestFile(p.Fset, call.Pos()) {
					return true
				}
				p.Reportf(call.Pos(), "context.%s() roots a new context in library package %s; thread the caller's ctx (or annotate a deliberate fallback)", fn.Name(), p.Path)
				return true
			})
		}
	}
	return a
}
