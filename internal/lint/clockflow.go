package lint

import (
	"go/types"
	"strings"
)

// clockflowExtra extends the wallclock sim domain for transitive taint:
// the collection and analysis pipelines must also be driven entirely by
// simulated/injected time, or recorded campaigns stop being
// byte-identical across runs; trace joins them because archive
// recovery and checkpoint replay must rebuild identical state from the
// same bytes on any machine. (obs is deliberately absent: process
// telemetry like uptime gauges legitimately reads the wall clock.)
var clockflowExtra = []string{"collector", "analysis", "detect", "trace", "shard"}

func inSimDomain(path string) bool {
	for _, seg := range simDomain {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func inClockflowDomain(path string) bool {
	if inSimDomain(path) {
		return true
	}
	for _, seg := range clockflowExtra {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func newClockflow() *Analyzer {
	a := &Analyzer{
		Name: "clockflow",
		Doc: "Interprocedural determinism taint: a function in the simulation or " +
			"collection domain (" + strings.Join(simDomain, ", ") + ", " +
			strings.Join(clockflowExtra, ", ") + ") must not reach time.Now/time.Since " +
			"or the global math/rand source through any call chain. The direct-call " +
			"wallclock/globalrand rules catch the sink itself; clockflow walks the " +
			"call graph and flags the call site where domain code commits to a " +
			"tainted chain, printing the full chain. internal/rng is exempt (seeded " +
			"streams are the sanctioned randomness source).",
	}
	a.RunProgram = func(p *ProgramPass) {
		prog := p.Prog
		reach := clockReach(prog)
		for _, f := range prog.Nodes {
			path := f.Pkg.Path
			if !inClockflowDomain(path) || strings.HasSuffix(path, "internal/rng") {
				continue
			}
			if f.Decl != nil && isTestFile(prog.Fset, f.Decl.Pos()) {
				continue
			}
			// Direct wall-clock calls in the extended (non-sim) domain:
			// wallclock does not cover these packages, clockflow does.
			// Direct math/rand use is globalrand's everywhere.
			if !inSimDomain(path) {
				for _, ext := range f.Ext {
					if isClockSink(ext.Fn) {
						p.Reportf(ext.Pos, "wall-clock %s in %s (clockflow domain); take time through simclock or an injected clock", extName(ext.Fn), path)
					}
				}
			}
			// Transitive: flag the edge into the innermost function of the
			// chain — the one that either leaves the domain or contains the
			// sink itself — so each leak is reported exactly once, at the
			// call that commits to it.
			reported := make(map[string]bool)
			for _, e := range f.Out {
				g := e.Callee
				if reach[g] == nil || strings.HasSuffix(g.Pkg.Path, "internal/rng") {
					continue
				}
				if inClockflowDomain(g.Pkg.Path) && hasReachingOut(reach, g) {
					continue // the finding belongs deeper in the chain
				}
				key := prog.posString(e.Pos)
				if reported[key] {
					continue // one finding per call site across dynamic candidates
				}
				reported[key] = true
				sink := sinkOf(reach, g)
				fix := "take time through simclock or an injected clock"
				if sink != nil && isGlobalRandSink(sink) {
					fix = "derive randomness with rng.New/Split"
				}
				p.Reportf(e.Pos, "%s reaches %s: %s; %s", f.Short(), sinkName(sink), prog.chainVia(reach, e), fix)
			}
		}
	}
	return a
}

// hasReachingOut reports whether n makes any call into the reach set —
// i.e. the chain continues below n and the finding belongs there.
func hasReachingOut(reach map[*FuncNode]*sinkStep, n *FuncNode) bool {
	for _, e := range n.Out {
		if reach[e.Callee] != nil {
			return true
		}
	}
	return false
}

func sinkName(fn *types.Func) string {
	if fn == nil {
		return "a determinism sink"
	}
	return extName(fn)
}
