package lint

import "testing"

// BenchmarkWholeRepoLint times a full-repo analysis pass — every rule,
// including the interprocedural call-graph build — over pre-loaded
// packages. Loading (go list + parse + type-check) sits outside the
// timer: it is the same work the seed did, now parallelized in Load;
// this benchmark guards the part this PR added, proving the
// whole-program pass keeps repo lint wall-clock in budget.
func BenchmarkWholeRepoLint(b *testing.B) {
	loader := NewLoader("../..")
	pkgs, err := loader.Load("mburst/...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, prog := RunPackagesProgram(pkgs, NewAnalyzers())
		if prog == nil {
			b.Fatal("no program built")
		}
		_ = diags
	}
}

// BenchmarkPerPackageRules isolates the parallelized per-package lane
// for comparison against the interprocedural total above.
func BenchmarkPerPackageRules(b *testing.B) {
	loader := NewLoader("../..")
	pkgs, err := loader.Load("mburst/...")
	if err != nil {
		b.Fatal(err)
	}
	var perPkg []*Analyzer
	for _, a := range NewAnalyzers() {
		if a.Run != nil && a.RunProgram == nil {
			perPkg = append(perPkg, a)
		}
	}
	names := make([]string, len(perPkg))
	for i, a := range perPkg {
		names[i] = a.Name
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzers, err := SelectAnalyzers(names)
		if err != nil {
			b.Fatal(err)
		}
		_ = RunPackages(pkgs, analyzers)
	}
}
