package lint

// lockorder builds a whole-program mutex acquisition-order graph and
// reports cycles. Two goroutines taking the same pair of locks in
// opposite orders deadlock only under exactly the wrong interleaving —
// the PR 1 archive-close race class — so the invariant is enforced
// statically: across the program there must exist one global order in
// which locks are acquired.
//
// Lock identity is structural, not per-instance: every sync.Mutex or
// sync.RWMutex field of a named type is one lock ("collector.Server.mu"),
// as is every package-level mutex variable. Within each function the
// rule simulates acquisitions in source order (deferred unlocks hold to
// function exit), and a call made while holding a lock contributes every
// lock the callee may transitively acquire — with the responsible call
// chain attached to the resulting edge. Function literal bodies are not
// simulated (their execution point is unknown); locklog's re-entry rule
// and the race detector cover those.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockID names one structural lock.
type lockID struct {
	pkg   string // package path
	typ   string // owning named type, "" for package-level vars
	field string // field or variable name
}

func (id lockID) String() string {
	short := id.pkg
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	if id.typ == "" {
		return short + "." + id.field
	}
	return short + "." + id.typ + "." + id.field
}

func (id lockID) less(other lockID) bool {
	if id.pkg != other.pkg {
		return id.pkg < other.pkg
	}
	if id.typ != other.typ {
		return id.typ < other.typ
	}
	return id.field < other.field
}

// acqEvent is one acquisition-relevant point in a function body.
type acqEvent struct {
	pos     token.Pos
	lock    lockID    // valid for acquire/release
	acquire bool      // false: release
	call    *FuncNode // non-nil: a static call instead of a lock op
}

// lockOrderEdge records "from is held while to is acquired" with one
// representative site.
type lockOrderEdge struct {
	from, to lockID
	fn       *FuncNode
	pos      token.Pos
	via      string // call chain when to is acquired inside a callee
}

func newLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc: "Whole-program lock-order consistency: sync mutexes (identified " +
			"structurally as Type.field or package-level vars) must be acquired in " +
			"one global order across all call chains. A cycle in the acquisition " +
			"graph — f takes A then B while g takes B then A, directly or through " +
			"calls — is a latent deadlock and is reported with both witness sites.",
	}
	a.RunProgram = func(p *ProgramPass) {
		prog := p.Prog

		events := make(map[*FuncNode][]acqEvent)
		for _, n := range prog.Nodes {
			if n.Decl == nil || n.Decl.Body == nil || isTestFile(prog.Fset, n.Decl.Pos()) {
				continue
			}
			events[n] = acqEvents(n)
		}

		trans := transitiveLocks(prog, events)
		edges := acquisitionEdges(prog, events, trans)
		reportLockCycles(p, prog, edges)
	}
	return a
}

// acqEvents extracts this function's lock operations and static calls
// in source order, skipping function literal bodies and deferred
// unlocks (a deferred unlock means the lock is held to function exit).
func acqEvents(n *FuncNode) []acqEvent {
	info := n.Pkg.Info
	var evs []acqEvent

	calls := make(map[token.Pos][]*Edge)
	for _, e := range n.Out {
		if !e.InFuncLit && !e.Dynamic {
			calls[e.Pos] = append(calls[e.Pos], e)
		}
	}

	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred unlocks hold to exit; deferred calls run at exit
		case *ast.CallExpr:
			if id, meth, ok := lockOpTarget(info, node, n.Pkg.Path); ok {
				evs = append(evs, acqEvent{
					pos:     node.Pos(),
					lock:    id,
					acquire: meth == "Lock" || meth == "RLock",
				})
				return true
			}
			for _, e := range calls[node.Pos()] {
				evs = append(evs, acqEvent{pos: node.Pos(), call: e.Callee})
			}
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// lockOpTarget recognizes x.Lock()/Unlock()/RLock()/RUnlock() on a
// sync.Mutex/RWMutex and names the structural lock x refers to. Locks
// it cannot name (locals, interface Lockers) are ignored.
func lockOpTarget(info *types.Info, call *ast.CallExpr, pkgPath string) (lockID, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false
	}
	meth := sel.Sel.Name
	switch meth {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockID{}, "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockID{}, "", false
	}
	recv := namedOrPointee(info.Types[sel.X].Type)
	if recv == nil || !isSyncLock(recv) {
		return lockID{}, "", false
	}

	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// s.mu, c.state.mu: the lock belongs to the innermost owner type.
		owner := namedOrPointee(info.Types[x.X].Type)
		if owner != nil && owner.Obj().Pkg() != nil {
			return lockID{pkg: owner.Obj().Pkg().Path(), typ: owner.Obj().Name(), field: x.Sel.Name}, meth, true
		}
		// pkg.muVar
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return lockID{pkg: v.Pkg().Path(), field: v.Name()}, meth, true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return lockID{pkg: v.Pkg().Path(), field: v.Name()}, meth, true
		}
	}
	return lockID{}, "", false
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// lockTrace remembers how a transitive acquisition happens: either a
// direct lock at pos, or through the first call edge of a chain.
type lockTrace struct {
	direct token.Pos
	via    *Edge
}

// transitiveLocks computes, for every function, the set of structural
// locks it may acquire directly or through static calls, with one
// representative route each.
func transitiveLocks(prog *Program, events map[*FuncNode][]acqEvent) map[*FuncNode]map[lockID]lockTrace {
	trans := make(map[*FuncNode]map[lockID]lockTrace, len(prog.Nodes))
	for _, n := range prog.Nodes {
		set := make(map[lockID]lockTrace)
		for _, ev := range events[n] {
			if ev.call == nil && ev.acquire {
				if _, ok := set[ev.lock]; !ok {
					set[ev.lock] = lockTrace{direct: ev.pos}
				}
			}
		}
		trans[n] = set
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.Nodes {
			for _, e := range n.Out {
				if e.InFuncLit || e.Dynamic {
					continue
				}
				for id := range trans[e.Callee] {
					if _, ok := trans[n][id]; !ok {
						trans[n][id] = lockTrace{via: e}
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// lockChain renders the route by which n acquires id, for edge messages.
func lockChain(prog *Program, trans map[*FuncNode]map[lockID]lockTrace, n *FuncNode, id lockID) string {
	var parts []string
	cur := n
	for hops := 0; hops < maxChainHops; hops++ {
		tr, ok := trans[cur][id]
		if !ok {
			break
		}
		if tr.via == nil {
			parts = append(parts, id.String()+".Lock ("+prog.posString(tr.direct)+")")
			return strings.Join(parts, " -> ")
		}
		parts = append(parts, tr.via.Callee.Short()+" ("+prog.posString(tr.via.Pos)+")")
		cur = tr.via.Callee
	}
	return strings.Join(append(parts, "..."), " -> ")
}

// acquisitionEdges simulates each function's events and returns one
// representative edge per ordered lock pair.
func acquisitionEdges(prog *Program, events map[*FuncNode][]acqEvent, trans map[*FuncNode]map[lockID]lockTrace) map[[2]lockID]*lockOrderEdge {
	reps := make(map[[2]lockID]*lockOrderEdge)
	add := func(from, to lockID, fn *FuncNode, pos token.Pos, via string) {
		if from == to {
			return // re-entry is locklog's domain
		}
		key := [2]lockID{from, to}
		if _, ok := reps[key]; !ok {
			reps[key] = &lockOrderEdge{from: from, to: to, fn: fn, pos: pos, via: via}
		}
	}
	for _, n := range prog.Nodes {
		evs := events[n]
		if len(evs) == 0 {
			continue
		}
		held := make(map[lockID]token.Pos)
		var order []lockID // deterministic iteration over held
		for _, ev := range evs {
			switch {
			case ev.call != nil:
				if len(order) == 0 {
					continue
				}
				ids := make([]lockID, 0, len(trans[ev.call]))
				for id := range trans[ev.call] {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i].less(ids[j]) })
				for _, h := range order {
					for _, id := range ids {
						add(h, id, n, ev.pos, " via "+ev.call.Short()+" -> "+lockChain(prog, trans, ev.call, id))
					}
				}
			case ev.acquire:
				for _, h := range order {
					add(h, ev.lock, n, ev.pos, "")
				}
				if _, ok := held[ev.lock]; !ok {
					held[ev.lock] = ev.pos
					order = append(order, ev.lock)
				}
			default: // release
				if _, ok := held[ev.lock]; ok {
					delete(held, ev.lock)
					for i, h := range order {
						if h == ev.lock {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			}
		}
	}
	return reps
}

// reportLockCycles finds strongly connected components of the
// acquisition graph and reports each multi-lock component once, at its
// earliest witness site, with every contributing edge described.
func reportLockCycles(p *ProgramPass, prog *Program, reps map[[2]lockID]*lockOrderEdge) {
	// Deterministic node and adjacency order.
	nodeSet := make(map[lockID]bool)
	for key := range reps {
		nodeSet[key[0]] = true
		nodeSet[key[1]] = true
	}
	nodes := make([]lockID, 0, len(nodeSet))
	for id := range nodeSet {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].less(nodes[j]) })
	succ := make(map[lockID][]lockID)
	for _, from := range nodes {
		for _, to := range nodes {
			if _, ok := reps[[2]lockID{from, to}]; ok {
				succ[from] = append(succ[from], to)
			}
		}
	}

	for _, scc := range tarjanSCC(nodes, succ) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[lockID]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		var cycleEdges []*lockOrderEdge
		for _, from := range scc {
			for _, to := range succ[from] {
				if inSCC[to] {
					cycleEdges = append(cycleEdges, reps[[2]lockID{from, to}])
				}
			}
		}
		anchor := cycleEdges[0]
		var locks, sites []string
		for _, id := range scc {
			locks = append(locks, id.String())
		}
		for _, e := range cycleEdges {
			if e.pos < anchor.pos {
				anchor = e
			}
			sites = append(sites, e.from.String()+" -> "+e.to.String()+" in "+e.fn.Short()+" ("+prog.posString(e.pos)+")"+e.via)
		}
		p.Reportf(anchor.pos, "lock-order cycle among %s: %s; acquire these locks in one global order",
			strings.Join(locks, ", "), strings.Join(sites, "; "))
	}
}

// tarjanSCC returns strongly connected components in deterministic
// order (iterative Tarjan over the sorted node list).
func tarjanSCC(nodes []lockID, succ map[lockID][]lockID) [][]lockID {
	index := make(map[lockID]int)
	low := make(map[lockID]int)
	onStack := make(map[lockID]bool)
	var stack []lockID
	var sccs [][]lockID
	next := 0

	var strong func(v lockID)
	strong = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].less(scc[j]) })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}
