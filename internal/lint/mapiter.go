package lint

import (
	"go/ast"
	"go/types"
)

func newMapiter() *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc: "Ranging directly over a map keyed by analysis.SeriesKey iterates in " +
			"nondeterministic order, which breaks the repository's byte-identical " +
			"reproduction guarantee wherever per-series results are assembled. " +
			"Iterate analysis.SortedKeys(m) instead; order-free loops may carry a " +
			"//lint:ignore mapiter justification.",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				m, ok := t.Underlying().(*types.Map)
				if !ok {
					return true
				}
				if isSeriesKey(m.Key()) {
					p.Reportf(rs.Pos(), "range over a map keyed by analysis.SeriesKey is nondeterministic; range analysis.SortedKeys(m) instead")
				}
				return true
			})
		}
	}
	return a
}

// isSeriesKey reports whether t is the named type
// mburst/internal/analysis.SeriesKey (through aliases).
func isSeriesKey(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "SeriesKey" || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "mburst/internal/analysis"
}
