package lint

// hotalloc is a static zero-allocation guard for functions annotated
//
//	//lint:hotpath reason
//
// in their doc comment. The runtime BENCH_wire/BENCH_stream gates prove
// the steady-state encode/ingest paths allocate nothing per batch;
// hotalloc moves that contract to analysis time and names the exact
// expression that would break it. An annotated function must not
// contain allocating constructs, and may only call functions that are
// themselves annotated, proven allocation-free by the same scan
// (propagated transitively over the call graph), or on a short list of
// allocation-free standard-library helpers.
//
// Two idioms the hot paths rely on are recognized rather than flagged:
//
//   - Capacity-guarded growth: make/append/literals dominated or
//     preceded by a cap(...)/len(...) guard that returns early
//     (grow-once buffers that amortize to zero).
//   - Error exits: constructs inside a return statement of an
//     error-returning function, or in an if-block that ends by
//     returning (corruption paths may allocate; steady state must not).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathPrefix introduces a hot-path annotation in a function's doc
// comment. Like //lint:ignore, the directive is validated: placement
// anywhere other than a function's doc comment is a finding, and an
// annotation on a function the call graph proves unreachable from any
// exported entry point is stale.
const hotpathPrefix = "lint:hotpath"

// allocFreePkgs whitelists entire standard-library packages whose
// functions and methods do not allocate.
var allocFreePkgs = map[string]bool{
	"encoding/binary": true,
	"math":            true,
	"math/bits":       true,
	"sync/atomic":     true,
}

// allocFreeFuncs whitelists individual standard-library functions and
// methods known not to allocate on their success path.
var allocFreeFuncs = map[string]bool{
	"io.ReadFull":             true,
	"io.ReadAtLeast":          true,
	"crc32.ChecksumIEEE":      true,
	"crc32.Update":            true,
	"errors.Is":               true,
	"errors.Unwrap":           true,
	"sync.(*Mutex).Lock":      true,
	"sync.(*Mutex).Unlock":    true,
	"sync.(*RWMutex).Lock":    true,
	"sync.(*RWMutex).Unlock":  true,
	"sync.(*RWMutex).RLock":   true,
	"sync.(*RWMutex).RUnlock": true,
}

func isAllocFreeExt(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if allocFreePkgs[fn.Pkg().Path()] {
		return true
	}
	return allocFreeFuncs[extName(fn)]
}

func newHotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc: "Zero-allocation guard for //lint:hotpath functions (the wire encode/" +
			"decode paths and streaming-accumulator Add paths): no allocating " +
			"constructs (make/new, map/slice literals, fresh-slice append, fmt " +
			"calls, interface boxing, closures, goroutines, string conversions) " +
			"outside cap-guarded growth or error exits, and no calls to functions " +
			"that are neither //lint:hotpath nor proven allocation-free. Misplaced " +
			"or unreachable (stale) //lint:hotpath directives are findings too.",
	}
	a.RunProgram = func(p *ProgramPass) {
		prog := p.Prog
		annotated, misplaced := collectHotpath(prog)
		for _, pos := range misplaced {
			p.Reportf(pos, "//lint:hotpath must be in a function's doc comment")
		}

		dirty := allocDirty(prog, annotated)

		// Stale annotations: unreachable from every exported entry point.
		roots := reachableFromExported(prog)
		for _, n := range prog.Nodes {
			pos, ok := annotated[n]
			if !ok {
				continue
			}
			if !roots[n] {
				p.Reportf(pos, "stale //lint:hotpath: %s is not reachable from any exported function; remove the annotation or export a caller", n.Short())
			}
		}

		for _, n := range prog.Nodes {
			if _, ok := annotated[n]; !ok {
				continue
			}
			if n.Decl == nil || n.Decl.Body == nil || isTestFile(prog.Fset, n.Decl.Pos()) {
				continue
			}
			short := n.Short()
			scanAlloc(n, annotated, dirty, func(pos token.Pos, format string, args ...any) {
				p.Reportf(pos, "hotpath "+short+": "+format, args...)
			})
		}
	}
	return a
}

// collectHotpath finds every //lint:hotpath directive, mapping
// well-placed ones to their function node and returning the positions
// of misplaced ones.
func collectHotpath(prog *Program) (map[*FuncNode]token.Pos, []token.Pos) {
	annotated := make(map[*FuncNode]token.Pos)
	var misplaced []token.Pos
	for _, pkg := range prog.Packages {
		docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
					docOf[fd.Doc] = fd
				}
			}
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				hit := token.NoPos
				for _, c := range cg.List {
					if isHotpathComment(c.Text) {
						hit = c.Pos()
						break
					}
				}
				if hit == token.NoPos {
					continue
				}
				fd, ok := docOf[cg]
				if !ok {
					misplaced = append(misplaced, hit)
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if node := prog.Funcs[obj]; node != nil {
					annotated[node] = hit
				}
			}
		}
	}
	return annotated, misplaced
}

func isHotpathComment(text string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false
	}
	rest := text[len(hotpathPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}

// allocDirty computes the set of functions that may allocate, by a
// reverse fixpoint: a node is dirty if its own body contains an
// allocating construct (scanned with the same exemptions reporting
// uses), calls an unlisted external or an unresolvable func value, or
// calls a dirty node. Annotated nodes are treated as clean for their
// callers — their own violations are reported at their bodies — so one
// finding does not cascade up every hot chain.
func allocDirty(prog *Program, annotated map[*FuncNode]token.Pos) map[*FuncNode]bool {
	dirty := make(map[*FuncNode]bool)
	var queue []*FuncNode
	mark := func(n *FuncNode) {
		if !dirty[n] {
			dirty[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range prog.Nodes {
		if n.Decl == nil || n.Decl.Body == nil {
			mark(n) // no body, no proof
			continue
		}
		found := false
		scanAlloc(n, annotated, nil, func(token.Pos, string, ...any) { found = true })
		if found {
			mark(n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			if _, ok := annotated[e.Caller]; ok {
				continue
			}
			mark(e.Caller)
		}
	}
	return dirty
}

// scanAlloc walks one function body and reports each allocating
// construct. With dirty == nil it runs in proof mode for allocDirty:
// same construct set, but calls to program functions are skipped (their
// dirt arrives by propagation over the graph instead).
func scanAlloc(n *FuncNode, annotated map[*FuncNode]token.Pos, dirty map[*FuncNode]bool, report func(token.Pos, string, ...any)) {
	info := n.Pkg.Info
	returnsErr := signatureReturnsError(n.Obj.Type().(*types.Signature))
	guards := capGuardRanges(n.Decl.Body, info)

	edgeAt := make(map[token.Pos][]*Edge)
	for _, e := range n.Out {
		if !e.InFuncLit {
			edgeAt[e.Pos] = append(edgeAt[e.Pos], e)
		}
	}
	extAt := make(map[token.Pos]*types.Func)
	for _, ext := range n.Ext {
		if !ext.InFuncLit {
			extAt[ext.Pos] = ext.Fn
		}
	}
	unresolvedAt := make(map[token.Pos]bool)
	for _, pos := range n.Unresolved {
		unresolvedAt[pos] = true
	}

	var stack []ast.Node
	errExempt := func() bool { return returnsErr && onErrorExit(stack) }
	capExempt := func(pos token.Pos) bool {
		for _, r := range guards {
			if r.from <= pos && pos < r.to {
				return true
			}
		}
		return false
	}

	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, node)
		switch node := node.(type) {
		case *ast.FuncLit:
			report(node.Pos(), "closure literal may escape (allocates)")
			stack = stack[:len(stack)-1]
			return false
		case *ast.GoStmt:
			report(node.Pos(), "starting a goroutine allocates")
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok && !errExempt() && !capExempt(node.Pos()) {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(node.Pos(), "map literal %s allocates", exprString(node))
				case *types.Slice:
					report(node.Pos(), "slice literal %s allocates", exprString(node))
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND && !errExempt() {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "%s escapes to the heap", exprString(node))
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && !errExempt() {
				if tv, ok := info.Types[node]; ok && tv.Value == nil && isStringType(tv.Type) {
					report(node.Pos(), "string concatenation %s allocates", exprString(node))
				}
			}
		case *ast.CallExpr:
			scanCallAlloc(node, stack, info, annotated, dirty,
				edgeAt, extAt, unresolvedAt, errExempt, capExempt, report)
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
}

// scanCallAlloc classifies one call inside a scanned body: builtin
// allocators, allocating conversions, callee provenance, and interface
// boxing of arguments.
func scanCallAlloc(call *ast.CallExpr, stack []ast.Node, info *types.Info,
	annotated map[*FuncNode]token.Pos, dirty map[*FuncNode]bool,
	edgeAt map[token.Pos][]*Edge, extAt map[token.Pos]*types.Func, unresolvedAt map[token.Pos]bool,
	errExempt func() bool, capExempt func(token.Pos) bool,
	report func(token.Pos, string, ...any)) {

	// Conversions: string <-> byte/rune slice copies, and conversions
	// into interface types box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 || errExempt() {
			return
		}
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if from == nil {
			return
		}
		switch {
		case isStringType(to) && isByteOrRuneSlice(from),
			isByteOrRuneSlice(to) && isStringType(from):
			report(call.Pos(), "conversion %s copies (allocates)", exprString(call))
		case types.IsInterface(to) && !types.IsInterface(from):
			report(call.Pos(), "conversion %s boxes into an interface", exprString(call))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !errExempt() && !capExempt(call.Pos()) {
					report(call.Pos(), "%s allocates without a cap-guard", exprString(call))
				}
			case "new":
				if !errExempt() {
					report(call.Pos(), "%s allocates", exprString(call))
				}
			case "append":
				if !errExempt() && !capExempt(call.Pos()) && !isReuseAppend(call, stack) {
					report(call.Pos(), "%s grows a fresh slice (not the x = append(x, ...) reuse pattern)", exprString(call))
				}
			}
			return
		}
	}

	pos := call.Pos()
	flagged := false
	if edges := edgeAt[pos]; len(edges) > 0 {
		if dirty != nil {
			for _, e := range edges {
				if _, ok := annotated[e.Callee]; ok {
					continue
				}
				if dirty[e.Callee] && !errExempt() {
					report(pos, "calls %s, which is neither //lint:hotpath nor proven allocation-free", e.Callee.Short())
					flagged = true
					break
				}
			}
		}
	} else if ext := extAt[pos]; ext != nil {
		if !isAllocFreeExt(ext) && !errExempt() {
			report(pos, "calls %s, which is not on the allocation-free list", extName(ext))
			flagged = true
		}
	} else if unresolvedAt[pos] {
		if !errExempt() {
			report(pos, "call through a func value cannot be proven allocation-free")
			flagged = true
		}
	}

	// Interface boxing of concrete arguments. Skipped when the call is
	// already flagged (fmt.* etc. would double-report every argument).
	if flagged || errExempt() {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.IsNil() {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at.Type.Underlying()) && !isPointerLike(at.Type) {
			report(arg.Pos(), "passing %s boxes %s into interface %s", exprString(arg), at.Type.String(), pt.String())
		}
	}
}

// isReuseAppend recognizes the documented capacity-reuse idioms:
// x = append(x, ...) (including x = append(x[:0], ...)) and
// return append(x, ...) — the caller owns the buffer contract.
func isReuseAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		argBase := types.ExprString(sliceBase(call.Args[0]))
		for _, lhs := range parent.Lhs {
			if types.ExprString(sliceBase(lhs)) == argBase {
				return true
			}
		}
	}
	return false
}

// sliceBase strips slice expressions: x[:0] -> x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		s, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = s.X
	}
}

type posRange struct{ from, to token.Pos }

// capGuardRanges returns the source ranges where grow-style allocation
// is considered capacity-guarded: inside any if statement whose
// condition consults cap() or len(), and — for the early-return guard
// idiom (if cap(s) >= n { return s[:n] }; return make(...)) — from such
// an if to the end of the function body.
func capGuardRanges(body *ast.BlockStmt, info *types.Info) []posRange {
	var ranges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsCapLen(ifs.Cond, info) {
			return true
		}
		ranges = append(ranges, posRange{ifs.Pos(), ifs.End()})
		if blockEndsInReturn(ifs.Body) {
			ranges = append(ranges, posRange{ifs.End(), body.End()})
		}
		return true
	})
	return ranges
}

func mentionsCapLen(cond ast.Expr, info *types.Info) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "cap" || b.Name() == "len") {
				found = true
			}
		}
		return true
	})
	return found
}

func blockEndsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// onErrorExit reports whether the innermost statement context is a
// return, or an if-block that ends by returning — the error-path shape.
func onErrorExit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BlockStmt:
			if i > 0 {
				if _, ok := stack[i-1].(*ast.IfStmt); ok && blockEndsInReturn(s) {
					return true
				}
			}
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type()) ||
		types.Implements(last, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isPointerLike reports types whose interface conversion does not copy
// the value to the heap (pointers already are references). Boxing a
// pointer still writes an iface word pair but allocates nothing new.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		return true
	}
	return false
}
