package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

func newErrfmt() *Analyzer {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	a := &Analyzer{
		Name: "errfmt",
		Doc: "Error strings are not capitalized (they compose mid-sentence after " +
			"\"...: \"), and fmt.Errorf that formats an error value uses %w so " +
			"callers can errors.Is/As through the wrap. The first word is exempt " +
			"when it is an identifier or initialism (contains upper case beyond " +
			"the first rune).",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				isNew := isPkgFunc(fn, "errors", "New")
				isErrorf := isPkgFunc(fn, "fmt", "Errorf")
				if (!isNew && !isErrorf) || len(call.Args) == 0 || isTestFile(p.Fset, call.Pos()) {
					return true
				}
				lit := leftmostString(call.Args[0])
				if lit == nil {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if capitalized(s) {
					p.Reportf(lit.Pos(), "error string %q is capitalized; error strings compose after \"...: \" and start lower-case", firstWord(s))
				}
				if isErrorf && !strings.Contains(s, "%w") {
					for _, arg := range call.Args[1:] {
						t := p.Info.TypeOf(arg)
						if t == nil || t == types.Typ[types.UntypedNil] {
							continue
						}
						if types.Implements(t, errIface) {
							p.Reportf(arg.Pos(), "error formatted without %%w; use %%w so callers can unwrap")
							break
						}
					}
				}
				return true
			})
		}
	}
	return a
}

// leftmostString descends a chain of string concatenations to the leading
// literal, which is where a capitalization problem would be.
func leftmostString(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.BasicLit:
			if x.Kind == token.STRING {
				return x
			}
			return nil
		case *ast.BinaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capitalized reports whether s starts with an upper-case letter that
// begins an ordinary word (not an identifier or initialism: those contain
// further upper case, like "FanIn" or "EOF").
func capitalized(s string) bool {
	first, size := utf8.DecodeRuneInString(s)
	if !unicode.IsUpper(first) {
		return false
	}
	word := firstWord(s[size:])
	for _, r := range word {
		if unicode.IsUpper(r) {
			return false
		}
	}
	return true
}

func firstWord(s string) string {
	end := strings.IndexFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	if end < 0 {
		return s
	}
	return s[:end]
}
