package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-checker complaints. Analysis runs
	// on whatever type information was recovered.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Loader discovers packages with the go command and type-checks them from
// source. Standard-library imports resolve through the stdlib source
// importer, so no compiled export data (and no external module) is needed.
type Loader struct {
	// Dir is the working directory for go list invocations; it must be
	// inside the module.
	Dir string

	fset  *token.FileSet
	std   types.Importer
	local map[string]*types.Package
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Dir:   dir,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns (e.g. "./...") to packages, type-checks them and
// their in-module dependencies in dependency order, and returns the
// pattern-matched packages. Test files are not loaded; the invariants
// mblint enforces concern production code paths.
//
// Parsing is fanned out across workers (token.FileSet is safe for
// concurrent AddFile); type-checking stays serial in the topological
// order go list emits, so every package's imports are already in the
// loader's cache when its turn comes.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}

	parsed := make([][]*ast.File, len(metas))
	errs := make([]error, len(metas))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, m := range metas {
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, m *listPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parsed[i], errs[i] = l.parse(m)
		}(i, m)
	}
	wg.Wait()

	var out []*Package
	for i, m := range metas {
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
		pkg, err := l.checkFiles(m.ImportPath, m.Dir, parsed[i])
		if err != nil {
			return nil, err
		}
		if !m.DepOnly {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir parses every .go file in dir as a single package with the given
// import path and type-checks it. Imports are resolved against the
// enclosing module (for in-module paths) or the standard library. This is
// the fixture loader used by the analyzer tests: fixture trees live under
// testdata/ where the go tool will not see them, and the import path is
// chosen by the test (rule applicability keys off it).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.checkFiles(importPath, dir, files)
}

// goList runs `go list -deps -json` and decodes the package stream, which
// the go command emits in dependency order (imports before importers).
func (l *Loader) goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var m listPackage
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// parse parses one listed package's files.
func (l *Loader) parse(m *listPackage) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		path := filepath.Join(m.Dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check parses and type-checks one listed package, caching the result for
// importers downstream in the dependency order.
func (l *Loader) check(m *listPackage) (*Package, error) {
	files, err := l.parse(m)
	if err != nil {
		return nil, err
	}
	return l.checkFiles(m.ImportPath, m.Dir, files)
}

func (l *Loader) checkFiles(importPath, dir string, files []*ast.File) (*Package, error) {
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	l.local[importPath] = tpkg
	return pkg, nil
}

// loaderImporter resolves imports during type-checking: in-module packages
// come from the loader's source-checked cache (loading on demand for
// fixture packages whose dependencies were not pre-listed), everything
// else from the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	if isStd(path) {
		return l.std.Import(path)
	}
	// Module-internal import not yet checked (fixture packages import the
	// real tree): load its dependency chain through go list.
	metas, listErr := l.goList([]string{path})
	if listErr != nil {
		return nil, fmt.Errorf("import %q: %w", path, listErr)
	}
	for _, m := range metas {
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		if _, ok := l.local[m.ImportPath]; ok {
			continue
		}
		if _, chkErr := l.check(m); chkErr != nil {
			return nil, chkErr
		}
	}
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("import %q: not found after go list", path)
}

// isStd reports whether path looks like a standard-library import (no
// domain element in the first path segment).
func isStd(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
