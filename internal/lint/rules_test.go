package lint

import "testing"

// Each rule is checked against a golden fixture package under testdata/.
// Import paths are chosen per fixture because rule applicability keys off
// them (wallclock fires only in sim-domain paths; globalrand everywhere
// but internal/rng).

func TestWallclock(t *testing.T) {
	checkFixture(t, "wallclock", "mburst/internal/simnet/wallfix", "wallclock")
}

// TestWallclockOutsideSimDomain pins the rule's scope: the identical
// source is clean under a non-simulation import path.
func TestWallclockOutsideSimDomain(t *testing.T) {
	diags := runFixture(t, "wallclock", "mburst/internal/collector/wallfix", "wallclock")
	if len(diags) != 0 {
		t.Errorf("wallclock fired outside the sim domain: %v", diags)
	}
}

func TestGlobalrand(t *testing.T) {
	checkFixture(t, "globalrand", "mburst/internal/workload/randfix", "globalrand")
}

// TestGlobalrandInsideRng pins the one exemption: internal/rng itself.
func TestGlobalrandInsideRng(t *testing.T) {
	diags := runFixture(t, "globalrand", "mburst/internal/rng", "globalrand")
	if len(diags) != 0 {
		t.Errorf("globalrand fired inside internal/rng: %v", diags)
	}
}

func TestCtxroot(t *testing.T) {
	checkFixture(t, "ctxroot", "mburst/internal/trace/ctxfix", "ctxroot")
}

func TestMetricname(t *testing.T) {
	checkFixture(t, "metricname", "mburst/internal/collector/metricfix", "metricname")
}

func TestMutexcopy(t *testing.T) {
	checkFixture(t, "mutexcopy", "mburst/internal/collector/mufix", "mutexcopy")
}

func TestLocklog(t *testing.T) {
	checkFixture(t, "locklog", "mburst/internal/collector/lockfix", "locklog")
}

func TestErrfmt(t *testing.T) {
	checkFixture(t, "errfmt", "mburst/internal/trace/errfix", "errfmt")
}

func TestMapiter(t *testing.T) {
	checkFixture(t, "mapiter", "mburst/internal/core/mapfix", "mapiter")
}

func TestSpanend(t *testing.T) {
	checkFixture(t, "spanend", "mburst/internal/collector/spanfix", "spanend")
}

// TestSpanendInsidePtrace pins the exemption: the tracer package itself.
// (The fixture's ignore directive goes stale when the rule is off, so only
// spanend findings count.)
func TestSpanendInsidePtrace(t *testing.T) {
	for _, d := range runFixture(t, "spanend", "mburst/internal/ptrace/spanfix", "spanend") {
		if d.Rule == "spanend" {
			t.Errorf("spanend fired inside internal/ptrace: %v", d)
		}
	}
}

func TestClockflow(t *testing.T) {
	checkFixture(t, "clockflow", "mburst/internal/collector/cflowfix", "clockflow")
}

// TestClockflowOutsideDomain pins the rule's scope: the identical source
// under a path outside the clockflow domain is clean.
func TestClockflowOutsideDomain(t *testing.T) {
	diags := runFixture(t, "clockflow", "mburst/internal/obsx/cflowfix", "clockflow")
	if len(diags) != 0 {
		t.Errorf("clockflow fired outside its domain: %v", diags)
	}
}

func TestHotalloc(t *testing.T) {
	checkFixture(t, "hotalloc", "mburst/internal/wire/hafix", "hotalloc")
}

func TestLockorder(t *testing.T) {
	checkFixture(t, "lockorder", "mburst/internal/collector/lofix", "lockorder")
}

func TestSelectAnalyzersUnknownRule(t *testing.T) {
	if _, err := SelectAnalyzers([]string{"nosuchrule"}); err == nil {
		t.Error("unknown rule selected without error")
	}
}

func TestRuleNamesStable(t *testing.T) {
	want := []string{"wallclock", "globalrand", "ctxroot", "metricname", "mutexcopy", "locklog", "errfmt", "mapiter", "spanend", "clockflow", "hotalloc", "lockorder"}
	got := RuleNames()
	if len(got) != len(want) {
		t.Fatalf("RuleNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rule %d = %q, want %q", i, got[i], want[i])
		}
	}
}
