package lint

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore rule reason
//
// A directive suppresses findings of the named rule on its own line or the
// line directly below it (so it can share the offending line or sit on its
// own line above a statement). Directives are validated: the rule must
// exist, the reason must be non-empty, and — when the named rule actually
// ran — the directive must suppress at least one finding; violations are
// reported under the reserved rule name "lint", which cannot itself be
// suppressed.
const ignorePrefix = "lint:ignore"

// LintRule is the reserved rule name for problems with the lint run
// itself (malformed, unknown, or stale //lint:ignore directives).
const LintRule = "lint"

type directive struct {
	file   string
	line   int
	col    int
	rule   string
	reason string
	used   bool
}

// applyIgnores removes diagnostics suppressed by well-formed directives
// and appends a diagnostic for every directive problem.
func applyIgnores(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range NewAnalyzers() {
		known[a.Name] = true
	}
	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
	}

	var directives []*directive
	var problems []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, diag := parseDirective(pkg, c, known)
					if diag != nil {
						problems = append(problems, *diag)
					}
					if d != nil {
						directives = append(directives, d)
					}
				}
			}
		}
	}

	var kept []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, d := range directives {
			if d.rule == diag.Rule && d.file == diag.File &&
				(d.line == diag.Line || d.line == diag.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}

	for _, d := range directives {
		if !d.used && active[d.rule] {
			problems = append(problems, Diagnostic{
				File: d.file, Line: d.line, Col: d.col, Rule: LintRule,
				Message: "stale //lint:ignore: no " + d.rule + " finding on this or the next line",
			})
		}
	}
	sort.Slice(problems, func(i, j int) bool {
		a, b := problems[i], problems[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return append(kept, problems...)
}

// parseDirective interprets one comment. It returns a directive when the
// comment is a well-formed suppression, and a diagnostic when the comment
// tries to be one but is malformed or names an unknown rule.
func parseDirective(pkg *Package, c *ast.Comment, known map[string]bool) (*directive, *Diagnostic) {
	text := c.Text
	if strings.HasPrefix(text, "//") {
		text = text[2:]
	} else if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(text[2:], "*/")
	}
	if !strings.HasPrefix(strings.TrimSpace(text), ignorePrefix) {
		return nil, nil
	}
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), ignorePrefix))
	bad := func(msg string) *Diagnostic {
		return &Diagnostic{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: LintRule, Message: msg,
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, bad("malformed //lint:ignore: want \"//lint:ignore rule reason\"")
	}
	rule := fields[0]
	if !known[rule] {
		return nil, bad("unknown rule " + strconv.Quote(rule) + " in //lint:ignore (known: " + strings.Join(RuleNames(), ", ") + ")")
	}
	if len(fields) < 2 {
		return nil, bad("//lint:ignore " + rule + " is missing a reason")
	}
	return &directive{
		file: pos.Filename, line: pos.Line, col: pos.Column,
		rule: rule, reason: strings.TrimSpace(strings.TrimPrefix(rest, rule)),
	}, nil
}
