package lint

// Whole-program call graph. The interprocedural rules (clockflow,
// hotalloc, lockorder) need to reason about what a function reaches
// through any chain of calls, across package boundaries. BuildProgram
// stitches the per-package type information the loader already produced
// into one graph: a node per function declaration, a static edge per
// resolved call, and dynamic edges from interface method calls to every
// repo-local concrete type whose method set satisfies the interface.
// Everything stays dependency-free on go/ast + go/types.
//
// Determinism: packages are visited in import-path order, files and
// declarations in source order, and interface candidates in (package,
// type-name) order, so node and edge slices — and therefore every
// diagnostic derived from them — are reproducible run to run.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Program is the whole-program view over one lint run's packages.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path

	// Funcs maps each declared function or method object to its node.
	Funcs map[*types.Func]*FuncNode
	// Nodes lists every node in deterministic (package, file, decl) order.
	Nodes []*FuncNode

	// named lists every package-level named type in the program, in
	// deterministic order; it is the candidate pool for interface
	// method-set resolution.
	named []*types.Named

	staticEdges  int
	dynamicEdges int
}

// FuncNode is one declared function or method. Calls lexically inside
// function literals are attributed to the enclosing declaration (the
// literal runs with the declaration's obligations as far as determinism
// taint is concerned); edges carry InFuncLit so rules that must not look
// inside literals (lockorder's event ordering) can filter them out.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Out []*Edge // calls this function makes, in source order
	In  []*Edge // calls made to this function, in caller order

	// Ext records calls that leave the program (standard library), in
	// source order.
	Ext []ExtCall
	// Unresolved records call positions the graph cannot resolve: calls
	// through plain func values, func-typed fields, and parameters.
	Unresolved []token.Pos
}

// Edge is one resolved call site.
type Edge struct {
	Caller, Callee *FuncNode
	Pos            token.Pos
	// Dynamic marks edges resolved through an interface method set: the
	// callee is one possible concrete target, not the only one.
	Dynamic bool
	// InFuncLit marks call sites lexically inside a function literal of
	// the caller.
	InFuncLit bool
}

// ExtCall is one call site whose callee is outside the program.
type ExtCall struct {
	Fn        *types.Func
	Pos       token.Pos
	InFuncLit bool
}

// ProgramStats summarizes graph size for the CI artifact and -graph.
type ProgramStats struct {
	Packages     int `json:"packages"`
	Functions    int `json:"functions"`
	StaticEdges  int `json:"static_edges"`
	DynamicEdges int `json:"dynamic_edges"`
}

// Stats returns the graph's size counters.
func (prog *Program) Stats() ProgramStats {
	return ProgramStats{
		Packages:     len(prog.Packages),
		Functions:    len(prog.Nodes),
		StaticEdges:  prog.staticEdges,
		DynamicEdges: prog.dynamicEdges,
	}
}

// String renders the fully qualified name, e.g.
// "mburst/internal/wire.(*mbw3Codec).AppendBatch".
func (n *FuncNode) String() string {
	pkg := ""
	if p := n.Obj.Pkg(); p != nil {
		pkg = p.Path() + "."
	}
	return pkg + recvQualifier(n.Obj) + n.Obj.Name()
}

// Short renders the name with the package's short name, e.g.
// "wire.(*mbw3Codec).AppendBatch" — readable in one-line chains.
func (n *FuncNode) Short() string {
	pkg := ""
	if p := n.Obj.Pkg(); p != nil {
		pkg = p.Name() + "."
	}
	return pkg + recvQualifier(n.Obj) + n.Obj.Name()
}

// recvQualifier returns "(T)." or "(*T)." for methods, "" for functions.
func recvQualifier(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	star := ""
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
		star = "*"
	}
	if named, ok := rt.(*types.Named); ok {
		return "(" + star + named.Obj().Name() + ")."
	}
	return ""
}

// extName renders a non-program function for chain output, e.g.
// "time.Now" or "binary.(ByteOrder).Uint32".
func extName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + recvQualifier(fn) + fn.Name()
}

// BuildProgram constructs the call graph over pkgs. The packages must
// come from one Loader so type objects are identical across packages.
func BuildProgram(pkgs []*Package) *Program {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	prog := &Program{
		Packages: sorted,
		Funcs:    make(map[*types.Func]*FuncNode),
	}
	if len(sorted) > 0 {
		prog.Fset = sorted[0].Fset
	}

	// Pass 1: one node per declaration, plus the named-type candidate
	// pool for interface resolution.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				prog.Funcs[obj] = node
				prog.Nodes = append(prog.Nodes, node)
			}
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				prog.named = append(prog.named, named)
			}
		}
	}

	// Pass 2: edges.
	for _, node := range prog.Nodes {
		prog.addEdges(node)
	}
	return prog
}

// addEdges walks one declaration body and records every call.
func (prog *Program) addEdges(node *FuncNode) {
	if node.Decl.Body == nil {
		return
	}
	info := node.Pkg.Info
	litDepth := 0
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(n.Body, walk)
			litDepth--
			return false
		case *ast.CallExpr:
			prog.addCall(node, info, n, litDepth > 0)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// addCall classifies one call expression into a static edge, dynamic
// edges, an external call, or an unresolved call.
func (prog *Program) addCall(caller *FuncNode, info *types.Info, call *ast.CallExpr, inLit bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations: f[T](...) — resolve through the index base.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	pos := call.Pos()

	var fn *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			fn = obj
		case *types.Builtin, nil:
			return
		default:
			caller.Unresolved = append(caller.Unresolved, pos)
			return
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			if _, isVar := info.Uses[fun.Sel].(*types.Var); isVar {
				caller.Unresolved = append(caller.Unresolved, pos)
			}
			return
		}
		fn = obj
	case *ast.FuncLit:
		return // body already walked in place
	default:
		caller.Unresolved = append(caller.Unresolved, pos)
		return
	}

	// Interface method call: fan out to every satisfying concrete type.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			prog.addDynamic(caller, fn, pos, inLit)
			return
		}
	}

	if callee, ok := prog.Funcs[fn]; ok {
		e := &Edge{Caller: caller, Callee: callee, Pos: pos, InFuncLit: inLit}
		caller.Out = append(caller.Out, e)
		callee.In = append(callee.In, e)
		prog.staticEdges++
		return
	}
	caller.Ext = append(caller.Ext, ExtCall{Fn: fn, Pos: pos, InFuncLit: inLit})
}

// addDynamic resolves an interface method call against every program
// named type whose method set satisfies the interface.
func (prog *Program) addDynamic(caller *FuncNode, iface *types.Func, pos token.Pos, inLit bool) {
	recv := iface.Type().(*types.Signature).Recv().Type()
	it, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	seen := make(map[*FuncNode]bool)
	for _, named := range prog.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		impl := types.Implements(named, it) || types.Implements(types.NewPointer(named), it)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, iface.Pkg(), iface.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		callee, ok := prog.Funcs[m]
		if !ok || seen[callee] {
			continue // promoted from outside the program, or duplicate
		}
		seen[callee] = true
		e := &Edge{Caller: caller, Callee: callee, Pos: pos, Dynamic: true, InFuncLit: inLit}
		caller.Out = append(caller.Out, e)
		callee.In = append(callee.In, e)
		prog.dynamicEdges++
	}
}

// LookupFuncs finds nodes by name for mblint -why: an exact qualified
// name ("mburst/internal/wire.(*mbw3Codec).AppendBatch"), a short form
// ("wire.AppendBatch"), or a bare function/method name ("AppendBatch").
func (prog *Program) LookupFuncs(name string) []*FuncNode {
	var out []*FuncNode
	for _, n := range prog.Nodes {
		if n.String() == name || n.Short() == name || n.Obj.Name() == name ||
			strings.TrimSuffix(recvQualifier(n.Obj), ".")+"."+n.Obj.Name() == name {
			out = append(out, n)
		}
	}
	return out
}

// posString renders pos as "file.go:line" for one-line chain output.
func (prog *Program) posString(pos token.Pos) string {
	p := prog.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
