package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spanend enforces internal/ptrace's span lifecycle: every span a
// function Starts must be Ended on all return paths, or published via a
// deferred End. A span that is never Ended is never published — the
// batch silently vanishes from the waterfall, which is the worst kind of
// observability bug (the trace looks complete and is not).
//
// The analysis is lexical and flow-approximate, like locklog: within one
// function body it flags (a) a Start whose result is discarded, (b) a
// Start with no matching End anywhere, and (c) an explicit return
// lexically after a Start with no End lexically between them (the
// classic early-return leak). A deferred End covers every path; a span
// passed to another function or returned is assumed handed off.
func newSpanend() *Analyzer {
	a := &Analyzer{
		Name: "spanend",
		Doc: "Every ptrace span Start must have a matching End (or deferred End) on " +
			"all return paths; an unended span is silently dropped from the trace " +
			"ring, leaving a hole in the batch's waterfall.",
	}
	a.Run = func(p *Pass) {
		if pathHasSegment(p.Path, "ptrace") {
			return // the tracer implementation manufactures spans freely
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || isTestFile(p.Fset, fd.Pos()) {
					continue
				}
				checkSpanBody(p, fd.Body)
			}
		}
	}
	return a
}

// checkSpanBody analyzes one function body; nested function literals are
// analyzed independently (their returns are not the outer function's).
func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	w := &spanWalk{p: p}
	ast.Walk(w, body)
	w.report()
	for _, fl := range w.nested {
		checkSpanBody(p, fl.Body)
	}
}

// spanStart is one ptrace Start call found in a body.
type spanStart struct {
	pos token.Pos
	// obj is the variable the (possibly Set*-chained) result is bound to;
	// nil when the span was ended inline, discarded, or escaped.
	obj       types.Object
	name      string
	inline    bool // chain terminates in .End(...)
	discarded bool // bare expression statement: result thrown away
}

// spanEnd is one End call on a span variable.
type spanEnd struct {
	obj      types.Object
	pos      token.Pos
	deferred bool
}

// spanWalk is a parent-tracking walker collecting span lifecycle events.
type spanWalk struct {
	p       *Pass
	stack   []ast.Node
	starts  []spanStart
	ends    []spanEnd
	returns []token.Pos
	nested  []*ast.FuncLit
}

func (w *spanWalk) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return nil
	}
	if fl, ok := n.(*ast.FuncLit); ok {
		w.nested = append(w.nested, fl)
		return nil
	}
	w.stack = append(w.stack, n)
	switch node := n.(type) {
	case *ast.ReturnStmt:
		w.returns = append(w.returns, node.Pos())
	case *ast.CallExpr:
		w.handleCall(node)
	}
	return w
}

// isPtraceMethod reports whether call invokes the named method of
// internal/ptrace (with any receiver).
func isPtraceMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Name() == name &&
		pathHasSegment(fn.Pkg().Path(), "ptrace") &&
		fn.Type().(*types.Signature).Recv() != nil
}

func (w *spanWalk) handleCall(call *ast.CallExpr) {
	info := w.p.Info
	if isPtraceMethod(info, call, "End") {
		sel := call.Fun.(*ast.SelectorExpr)
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				deferred := false
				if len(w.stack) >= 2 {
					if d, ok := w.stack[len(w.stack)-2].(*ast.DeferStmt); ok && d.Call == call {
						deferred = true
					}
				}
				w.ends = append(w.ends, spanEnd{obj: obj, pos: call.Pos(), deferred: deferred})
			}
		}
		return
	}
	if !isPtraceMethod(info, call, "Start") {
		return
	}
	st := spanStart{pos: call.Pos()}
	// Climb the method chain: Start(...).SetBatch(...).SetFault(...)... —
	// each link is a SelectorExpr on the previous call wrapped in an outer
	// CallExpr. A chain ending in .End(...) is closed inline.
	i := len(w.stack) - 1 // stack[i] == call
	var cur ast.Node = call
	for i >= 2 {
		sel, ok := w.stack[i-1].(*ast.SelectorExpr)
		if !ok || sel.X != cur {
			break
		}
		outer, ok := w.stack[i-2].(*ast.CallExpr)
		if !ok || outer.Fun != sel {
			break
		}
		if sel.Sel.Name == "End" {
			st.inline = true
			break
		}
		cur = outer
		i -= 2
	}
	if !st.inline {
		switch parent := w.stack[i-1].(type) {
		case *ast.ExprStmt:
			st.discarded = true
		case *ast.AssignStmt:
			for ri, rhs := range parent.Rhs {
				if rhs == cur && ri < len(parent.Lhs) {
					if id, ok := parent.Lhs[ri].(*ast.Ident); ok {
						st.obj = info.ObjectOf(id)
						st.name = id.Name
					}
				}
			}
		case *ast.ValueSpec:
			for ri, v := range parent.Values {
				if v == cur && ri < len(parent.Names) {
					st.obj = info.ObjectOf(parent.Names[ri])
					st.name = parent.Names[ri].Name
				}
			}
		}
		// Any other parent (call argument, return value, composite literal)
		// means the span escapes this function; ownership moved with it.
	}
	w.starts = append(w.starts, st)
}

// report diffs the collected Starts against the Ends and returns.
func (w *spanWalk) report() {
	for _, st := range w.starts {
		switch {
		case st.inline:
			continue
		case st.discarded:
			w.p.Reportf(st.pos, "ptrace span Start result discarded: the span can never End and is dropped from the trace")
			continue
		case st.obj == nil:
			continue // escaped to another owner
		}
		var ends []spanEnd
		deferred := false
		for _, e := range w.ends {
			if e.obj == st.obj {
				ends = append(ends, e)
				deferred = deferred || e.deferred
			}
		}
		if len(ends) == 0 {
			w.p.Reportf(st.pos, "ptrace span %s is started but never Ended in this function", st.name)
			continue
		}
		if deferred {
			continue // a deferred End covers every return path
		}
		for _, r := range w.returns {
			if r < st.pos {
				continue
			}
			covered := false
			for _, e := range ends {
				if e.pos > st.pos && e.pos < r {
					covered = true
					break
				}
			}
			if !covered {
				w.p.Reportf(r, "return leaks ptrace span %s: no End between its Start and this return", st.name)
			}
		}
	}
}
