// Package lint is mburst's repo-specific static-analysis framework. It
// exists because the reproduction's core claims — byte-identical campaign
// output at any worker count and microsecond-faithful counter semantics —
// rest on conventions the compiler cannot check: simulated components must
// take time from internal/simclock rather than the wall clock, randomness
// must flow through internal/rng seeded streams, contexts must be threaded
// rather than re-rooted, and telemetry names must follow the mburst_*
// scheme. mblint (cmd/mblint) machine-checks those invariants on every PR.
//
// The framework is dependency-free: packages are discovered with
// `go list -json`, parsed with go/parser and type-checked with go/types
// against a stdlib source importer, so go.mod keeps zero requires.
//
// Findings can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore rule reason
//
// Directives are themselves checked: an unknown rule name, a missing
// reason, or a stale directive that no longer suppresses anything is a
// finding in its own right (rule "lint", which cannot be suppressed).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one lint rule. Analyzers may keep state across packages
// within a single run (metricname uses this for cross-package uniqueness),
// so a fresh set must be constructed per run via NewAnalyzers.
type Analyzer struct {
	// Name is the rule name used in findings and //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the rule
	// protects.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Per-package analyzers without cross-package state run concurrently
	// across packages.
	Run func(*Pass)
	// CrossPackage marks a Run that keeps state across packages
	// (metricname's uniqueness map); such analyzers run serially in
	// import-path order.
	CrossPackage bool
	// RunProgram, when set, runs once over the whole-program call graph
	// after every package has been analyzed (the interprocedural rules:
	// clockflow, hotalloc, lockorder). Run is typically nil then.
	RunProgram func(*ProgramPass)
}

// ProgramPass carries the whole program through one interprocedural
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// NewAnalyzers returns a fresh instance of every rule, in stable order.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		newWallclock(),
		newGlobalrand(),
		newCtxroot(),
		newMetricname(),
		newMutexcopy(),
		newLocklog(),
		newErrfmt(),
		newMapiter(),
		newSpanend(),
		newClockflow(),
		newHotalloc(),
		newLockorder(),
	}
}

// RuleNames returns the names of every known rule, in stable order.
func RuleNames() []string {
	var names []string
	for _, a := range NewAnalyzers() {
		names = append(names, a.Name)
	}
	return names
}

// SelectAnalyzers filters a fresh analyzer set down to the named rules.
// An unknown name is an error.
func SelectAnalyzers(names []string) ([]*Analyzer, error) {
	all := NewAnalyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %v)", n, RuleNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackages applies analyzers to pkgs, resolves //lint:ignore
// directives, and returns the surviving findings sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunPackagesProgram(pkgs, analyzers)
	return diags
}

// RunPackagesProgram is RunPackages plus the call graph it built, for
// callers (mblint -graph/-why, the CI artifact) that want graph stats.
//
// Stateless per-package analyzers run concurrently across packages;
// cross-package analyzers then run serially in import-path order (so
// metric-name uniqueness reports deterministically); interprocedural
// analyzers run last over the whole-program call graph. Findings are
// merged in package order before the final position sort, so the output
// is identical to a fully serial run.
func RunPackagesProgram(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *Program) {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	var parallel, serial, program []*Analyzer
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			program = append(program, a)
		case a.Run == nil:
		case a.CrossPackage:
			serial = append(serial, a)
		default:
			parallel = append(parallel, a)
		}
	}

	perPkg := make([][]Diagnostic, len(sorted))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sorted) {
		workers = len(sorted)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkg := sorted[i]
				for _, a := range parallel {
					a.Run(&Pass{
						Analyzer: a,
						Fset:     pkg.Fset,
						Files:    pkg.Files,
						Path:     pkg.Path,
						Pkg:      pkg.Types,
						Info:     pkg.Info,
						diags:    &perPkg[i],
					})
				}
			}
		}()
	}
	for i := range sorted {
		next <- i
	}
	close(next)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	for _, pkg := range sorted {
		for _, a := range serial {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			})
		}
	}

	var prog *Program
	if len(sorted) > 0 {
		prog = BuildProgram(sorted)
		for _, a := range program {
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &diags})
		}
	}

	diags = applyIgnores(sorted, analyzers, diags)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags, prog
}
