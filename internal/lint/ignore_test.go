package lint

import (
	"strings"
	"testing"
)

// TestIgnoreSemantics runs the suppression fixture: valid directives on
// the preceding or same line silence findings, while unknown rules,
// missing reasons, and stale directives report under the reserved "lint"
// rule (see testdata/ignore/fixture.go for the cases).
func TestIgnoreSemantics(t *testing.T) {
	checkFixture(t, "ignore", "mburst/internal/trace/ignorefix", "ctxroot")
}

// TestIgnoreInactiveRuleNotStale pins that a directive for a known rule
// is only stale-checked when that rule actually ran: running the same
// fixture under errfmt alone must report no stale ctxroot directives
// (and no findings at all — the fixture has no errfmt violations).
func TestIgnoreInactiveRuleNotStale(t *testing.T) {
	diags := runFixture(t, "ignore", "mburst/internal/trace/ignorefix", "errfmt")
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("directive for inactive rule reported stale: %s", d)
		}
	}
	// Unknown-rule and missing-reason directives are malformed no matter
	// which rules run, so they still report.
	var malformed int
	for _, d := range diags {
		if d.Rule != LintRule {
			t.Errorf("unexpected non-lint finding under errfmt: %s", d)
			continue
		}
		malformed++
	}
	if malformed != 2 {
		t.Errorf("got %d lint directive findings under errfmt, want 2 (unknown rule + missing reason): %v", malformed, diags)
	}
}

// TestLintRuleNotSuppressible pins that directive problems cannot
// themselves be silenced: "lint" is not a selectable rule name.
func TestLintRuleNotSuppressible(t *testing.T) {
	if _, err := SelectAnalyzers([]string{LintRule}); err == nil {
		t.Error("reserved rule \"lint\" was selectable")
	}
}
