package lint

import (
	"go/ast"
	"go/types"
)

func newMutexcopy() *Analyzer {
	a := &Analyzer{
		Name: "mutexcopy",
		Doc: "Receivers, parameters, and results must not pass a sync.Mutex or " +
			"sync.RWMutex (or any struct containing one) by value: the copy locks " +
			"independently of the original, which silently un-serializes the " +
			"collector hot paths that depend on it.",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || isTestFile(p.Fset, fd.Pos()) {
					continue
				}
				check := func(list *ast.FieldList, kind string) {
					if list == nil {
						return
					}
					for _, field := range list.List {
						t := p.Info.TypeOf(field.Type)
						if t == nil {
							continue
						}
						if lock := lockInside(t, nil); lock != "" {
							p.Reportf(field.Pos(), "%s of %s passes %s by value; pass a pointer",
								kind, fd.Name.Name, lock)
						}
					}
				}
				check(fd.Recv, "receiver")
				check(fd.Type.Params, "parameter")
				check(fd.Type.Results, "result")
			}
		}
	}
	return a
}

// lockInside reports the description of a lock reachable by value inside
// t ("" if none). Pointers, maps, slices, and channels are references and
// stop the walk.
func lockInside(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if isSyncLock(t) {
		return t.String()
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInside(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInside(u.Elem(), seen)
	}
	return ""
}
