package lint

// Interprocedural dataflow over the call graph. Two directions are
// needed: reverse reachability from determinism sinks (clockflow, and
// mblint -why's chain explanations) and forward reachability from
// exported roots (hotalloc's stale-annotation check). Both are plain
// BFS over the deterministic edge order, so the first chain found — and
// therefore the one printed — is a shortest chain and stable run to run.

import (
	"fmt"
	"go/types"
	"strings"
)

// maxChainHops bounds printed call chains; deeper chains elide the
// middle rather than flooding a one-line diagnostic.
const maxChainHops = 12

// isClockSink reports whether fn is a wall-clock read/scheduling call.
func isClockSink(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallclockFuncs[fn.Name()] &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isGlobalRandSink reports whether fn draws from the global math/rand
// source. Constructors (New, NewSource, ...) take an explicit seeded
// source and are deterministic given it, so they are not sinks.
func isGlobalRandSink(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return !strings.HasPrefix(fn.Name(), "New")
}

// sinkStep is one node's route to a sink: either a direct external call
// (next == nil) or the first hop of a shortest chain.
type sinkStep struct {
	sink    *types.Func // set when the node calls the sink directly
	sinkPos ExtCall
	next    *Edge // next hop toward the sink (nil when direct)
}

// clockReach computes, for every node that can reach a determinism sink
// through any call chain, a shortest route to one. Nodes in
// internal/rng are exempt: seeded streams are the sanctioned home of
// math/rand use, so chains ending there are not taint.
func clockReach(prog *Program) map[*FuncNode]*sinkStep {
	reach := make(map[*FuncNode]*sinkStep)
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if strings.HasSuffix(n.Pkg.Path, "internal/rng") {
			continue
		}
		for _, ext := range n.Ext {
			if isClockSink(ext.Fn) || isGlobalRandSink(ext.Fn) {
				reach[n] = &sinkStep{sink: ext.Fn, sinkPos: ext}
				queue = append(queue, n)
				break
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			if reach[e.Caller] != nil {
				continue
			}
			reach[e.Caller] = &sinkStep{next: e}
			queue = append(queue, e.Caller)
		}
	}
	return reach
}

// sinkOf follows a node's route and returns the terminal sink function.
func sinkOf(reach map[*FuncNode]*sinkStep, n *FuncNode) *types.Func {
	for hops := 0; hops < 1<<16; hops++ {
		step := reach[n]
		if step == nil {
			return nil
		}
		if step.next == nil {
			return step.sink
		}
		n = step.next.Callee
	}
	return nil
}

// sinkTail renders the hops from n (exclusive) down to the sink, each
// as "name (file.go:line)".
func (prog *Program) sinkTail(reach map[*FuncNode]*sinkStep, n *FuncNode) []string {
	var parts []string
	cur := n
	for {
		step := reach[cur]
		if step == nil {
			break
		}
		if step.next == nil {
			parts = append(parts, extName(step.sink)+" ("+prog.posString(step.sinkPos.Pos)+")")
			break
		}
		if len(parts) >= maxChainHops {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, step.next.Callee.Short()+" ("+prog.posString(step.next.Pos)+")")
		cur = step.next.Callee
	}
	return parts
}

// chainString renders the route from n to its sink:
//
//	wire.helper -> core.tick (b.go:3) -> time.Now (b.go:9)
func (prog *Program) chainString(reach map[*FuncNode]*sinkStep, n *FuncNode) string {
	return n.Short() + " -> " + strings.Join(prog.sinkTail(reach, n), " -> ")
}

// chainVia renders the route that starts with the call edge e:
//
//	core.run -> wire.helper (a.go:12) -> time.Now (b.go:9)
func (prog *Program) chainVia(reach map[*FuncNode]*sinkStep, e *Edge) string {
	parts := append(
		[]string{e.Caller.Short(), e.Callee.Short() + " (" + prog.posString(e.Pos) + ")"},
		prog.sinkTail(reach, e.Callee)...)
	return strings.Join(parts, " -> ")
}

// Explain describes, for every function matching name (qualified,
// short, or bare — see LookupFuncs), whether it reaches a determinism
// sink and by what chain. This is mblint -why.
func Explain(prog *Program, name string) ([]string, error) {
	nodes := prog.LookupFuncs(name)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no function named %q in the loaded packages", name)
	}
	reach := clockReach(prog)
	var out []string
	for _, n := range nodes {
		if reach[n] == nil {
			out = append(out, n.String()+": reaches no wall-clock or global-rand sink")
			continue
		}
		out = append(out, n.String()+": "+prog.chainString(reach, n))
	}
	return out, nil
}

// reachableFromExported returns every node reachable (over static and
// dynamic edges, including calls made from function literals) from an
// exported function or method, main, or init. These are the program's
// entry points; hotalloc treats an annotation on anything else as stale.
func reachableFromExported(prog *Program) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		name := n.Obj.Name()
		if n.Obj.Exported() || name == "main" || name == "init" {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}
