package lint

// A tiny analysistest-alike: fixture packages live under testdata/ (where
// the go tool does not look), each directory is one package, and every
// line that should produce a finding carries a comment of the form
//
//	// want `regexp` `another regexp`
//
// with one pattern per expected finding on that line. Patterns may be
// back-quoted or double-quoted. The runner loads the fixture with the
// real loader (so mburst/internal/obs etc. resolve to the live tree),
// runs the analyzers under test through the full pipeline — including
// //lint:ignore resolution — and requires an exact match: every finding
// matched by a want on its line, every want consumed by a finding.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var sharedLoader *Loader

// loaderForTest returns a process-wide loader so the standard library is
// type-checked from source once, not once per test.
func loaderForTest(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		sharedLoader = NewLoader(".")
	}
	return sharedLoader
}

// runFixture lints one testdata package under the named rules (all rules
// when empty). importPath is chosen by the test: path-keyed rules
// (wallclock's sim domain) key off it.
func runFixture(t *testing.T, dir, importPath string, rules ...string) []Diagnostic {
	t.Helper()
	pkg, err := loaderForTest(t).LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", dir, terr)
	}
	analyzers, err := SelectAnalyzers(rules)
	if err != nil {
		t.Fatal(err)
	}
	return RunPackages([]*Package{pkg}, analyzers)
}

// checkFixture runs the fixture and diffs findings against its // want
// comments.
func checkFixture(t *testing.T, dir, importPath string, rules ...string) {
	t.Helper()
	diags := runFixture(t, dir, importPath, rules...)
	wants := collectWants(t, filepath.Join("testdata", dir))

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: want %q matched no finding", key, w.re)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantPattern = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants scans fixture sources for // want comments.
func collectWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]*want)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			for _, m := range wantPattern.FindAllStringSubmatch(after, -1) {
				pat := m[1]
				if pat == "" && m[2] != "" {
					if unq, err := strconv.Unquote(`"` + m[2] + `"`); err == nil {
						pat = unq
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}
