package lint

import (
	"go/ast"
	"strings"
)

// simDomain names the packages whose behaviour must be a pure function of
// simulated time: one wall-clock read inside them and the byte-identical
// campaign guarantee (internal/core) is gone.
var simDomain = []string{"simnet", "asic", "eventq", "workload", "sweep", "replay", "core", "fault"}

// wallclockFuncs are the time-package functions that read or schedule
// against the wall clock. Referencing one as a value (the injectable
// `Sleep func(time.Duration)` default pattern) is allowed; calling one in
// a sim-domain package is not.
var wallclockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

func newWallclock() *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc: "Simulation-domain packages (" + strings.Join(simDomain, ", ") + ") must take time from " +
			"internal/simclock or an injected clock, never from the time package's " +
			"wall clock. Wall-clock reads make simulated runs irreproducible " +
			"(DESIGN §1: microsecond-faithful counter semantics; PR 2: " +
			"byte-identical traces at any worker count).",
	}
	a.Run = func(p *Pass) {
		inDomain := false
		for _, seg := range simDomain {
			if pathHasSegment(p.Path, seg) {
				inDomain = true
				break
			}
		}
		if !inDomain {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
					return true
				}
				if isTestFile(p.Fset, call.Pos()) {
					return true
				}
				p.Reportf(call.Pos(), "wall-clock time.%s in simulation package %s; use simclock or an injected clock/Sleep field", fn.Name(), p.Path)
				return true
			})
		}
	}
	return a
}
