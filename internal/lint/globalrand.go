package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func newGlobalrand() *Analyzer {
	a := &Analyzer{
		Name: "globalrand",
		Doc: "All randomness flows through mburst/internal/rng seeded, splittable " +
			"streams. math/rand (and math/rand/v2) package functions — including the " +
			"global-source conveniences and New/NewSource — make component behaviour " +
			"depend on call ordering across the program and break seed-stable " +
			"campaign output; they are permitted only inside internal/rng itself.",
	}
	a.Run = func(p *Pass) {
		if strings.HasSuffix(p.Path, "internal/rng") {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Only package-level functions: methods on an externally
				// supplied *rand.Rand are its owner's problem.
				if fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if isTestFile(p.Fset, sel.Pos()) {
					return true
				}
				p.Reportf(sel.Pos(), "%s.%s outside internal/rng; derive a stream with rng.New/Split instead", path, fn.Name())
				return true
			})
		}
	}
	return a
}
