package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// locklog guards the pattern that bit mbcollectd in PR 1: a method locks
// the receiver's mutex and then calls another method on the same receiver
// — typically a logging or snapshot helper — that re-acquires the same
// mutex, deadlocking on sync.Mutex (or silently serializing on RWMutex).
// The analysis is one level deep and flow-approximate: within a method
// body, a call to a sibling method that locks mutex field F is flagged if
// it appears after a plain F.Lock()/RLock() with no intervening plain
// Unlock (deferred unlocks hold to function exit).
func newLocklog() *Analyzer {
	a := &Analyzer{
		Name: "locklog",
		Doc: "A method must not call another method on the same receiver while " +
			"holding a mutex that the callee also acquires (e.g. locking mu and " +
			"then calling the receiver's logging/snapshot helper): the re-entry " +
			"deadlocks. Restructure so the helper takes the data, not the lock.",
	}
	a.Run = func(p *Pass) {
		// Pass 1: which mutex fields does each method of each named type
		// acquire?
		type methodKey struct {
			typ  *types.TypeName
			name string
		}
		acquires := make(map[methodKey]map[string]bool)
		methods := make([]*ast.FuncDecl, 0)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
					continue
				}
				methods = append(methods, fd)
				recvObj, named := receiverOf(p, fd)
				if recvObj == nil {
					continue
				}
				key := methodKey{named.Obj(), fd.Name.Name}
				for _, ev := range lockEvents(p, fd, recvObj, named, nil) {
					if ev.kind == evLock {
						if acquires[key] == nil {
							acquires[key] = make(map[string]bool)
						}
						acquires[key][ev.field] = true
					}
				}
			}
		}

		// Pass 2: simulate each method's lock state and flag re-entrant
		// sibling calls made while a shared mutex is held.
		for _, fd := range methods {
			if isTestFile(p.Fset, fd.Pos()) {
				continue
			}
			recvObj, named := receiverOf(p, fd)
			if recvObj == nil {
				continue
			}
			lookup := func(method string) map[string]bool {
				return acquires[methodKey{named.Obj(), method}]
			}
			evs := lockEvents(p, fd, recvObj, named, lookup)
			sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
			held := make(map[string]bool)
			for _, ev := range evs {
				switch ev.kind {
				case evLock:
					held[ev.field] = true
				case evUnlock:
					held[ev.field] = false
				case evCall:
					if held[ev.field] {
						p.Reportf(ev.pos, "%s calls %s.%s while %s is held; the callee re-acquires it (deadlock)",
							fd.Name.Name, recvObj.Name(), ev.callee, ev.field)
					}
				}
			}
		}
	}
	return a
}

const (
	evLock = iota
	evUnlock
	evCall
)

type lockEvent struct {
	pos    token.Pos
	kind   int
	field  string // mutex field involved
	callee string // for evCall, the sibling method name
}

// receiverOf resolves a method's named receiver variable and type.
func receiverOf(p *Pass, fd *ast.FuncDecl) (*types.Var, *types.Named) {
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return nil, nil
	}
	obj, _ := p.Info.Defs[recv.Names[0]].(*types.Var)
	if obj == nil {
		return nil, nil
	}
	named := namedOrPointee(obj.Type())
	if named == nil {
		return nil, nil
	}
	return obj, named
}

// lockEvents walks a method body collecting Lock/Unlock operations on the
// receiver's mutex fields and — when lookup is non-nil — calls to sibling
// methods known to acquire one of those fields (one evCall per field the
// callee acquires). Deferred Unlocks are skipped: they hold to exit.
func lockEvents(p *Pass, fd *ast.FuncDecl, recvObj *types.Var, named *types.Named, lookup func(string) map[string]bool) []lockEvent {
	deferred := make(map[*ast.CallExpr]bool)
	var evs []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.field.Lock() / Unlock() and RW variants.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if id, ok := inner.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
				ft := p.Info.TypeOf(inner)
				if ft != nil && isSyncLock(ft) {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						if !deferred[call] {
							evs = append(evs, lockEvent{pos: call.Pos(), kind: evLock, field: inner.Sel.Name})
						}
					case "Unlock", "RUnlock":
						if !deferred[call] {
							evs = append(evs, lockEvent{pos: call.Pos(), kind: evUnlock, field: inner.Sel.Name})
						}
					}
				}
			}
			return true
		}
		// recv.Sibling(...)
		if lookup == nil {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
			for field := range lookup(sel.Sel.Name) {
				evs = append(evs, lockEvent{pos: call.Pos(), kind: evCall, field: field, callee: sel.Sel.Name})
			}
		}
		return true
	})
	return evs
}
