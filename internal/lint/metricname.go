package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricNamePattern is the repo's telemetry naming scheme (README
// "Observability"): one mburst_ namespace so dashboards and alerts can
// select the whole pipeline with a single matcher.
var metricNamePattern = regexp.MustCompile(`^mburst_[a-z0-9_]+$`)

// registryMethods are the obs.Registry constructors that take a metric
// name as their first argument.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

func newMetricname() *Analyzer {
	type site struct {
		file string
		line int
	}
	seen := make(map[string]site) // metric name → first registration site
	a := &Analyzer{
		Name:         "metricname",
		CrossPackage: true,
		Doc: "Every obs.Registry instrument is registered with a string-literal " +
			"name matching ^mburst_[a-z0-9_]+$, unique across the repo. Literal, " +
			"schema-conforming names keep the exposition greppable and let " +
			"dashboards select the pipeline with one matcher; uniqueness prevents " +
			"two subsystems from silently merging their series. Conventional " +
			"go_*/process_* runtime metrics carry //lint:ignore annotations.",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || !registryMethods[fn.Name()] || len(call.Args) == 0 {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					return true
				}
				named := namedOrPointee(recv.Type())
				if named == nil || named.Obj().Name() != "Registry" ||
					named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
					return true
				}
				arg := call.Args[0]
				lit, ok := arg.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					p.Reportf(arg.Pos(), "obs.Registry.%s name must be a string literal so mblint can check the mburst_* scheme", fn.Name())
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				pos := p.Fset.Position(lit.Pos())
				if !metricNamePattern.MatchString(name) {
					p.Reportf(lit.Pos(), "metric name %q does not match %s", name, metricNamePattern)
				}
				if first, dup := seen[name]; dup {
					p.Reportf(lit.Pos(), "metric name %q already registered at %s", name,
						fmt.Sprintf("%s:%d", first.file, first.line))
				} else {
					seen[name] = site{file: pos.Filename, line: pos.Line}
				}
				return true
			})
		}
	}
	return a
}
