package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method named by a call's selector
// (pkg.Fn or recv.Method). It returns nil for calls through plain
// identifiers, conversions, and unresolved selectors.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isTestFile reports whether pos lies in a _test.go file. The module
// loader never feeds test files, but fixture loaders may.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pathHasSegment reports whether importPath contains seg as a complete
// "/"-separated element.
func pathHasSegment(importPath, seg string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// namedOrPointee unwraps one level of pointer and returns the named type,
// if any.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// exprString renders an expression for a diagnostic, truncated so one
// pathological literal cannot flood the report line.
func exprString(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	n, _ := t.(*types.Named)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}
