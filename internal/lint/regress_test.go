package lint

import (
	"fmt"
	"testing"
)

// TestRegressExactPositions runs every rule over a fixture tree seeding
// exactly one violation per rule and asserts the exact file:line:col and
// rule of each finding. This is deliberately brittle: an analyzer
// refactor that shifts a position or stops detecting a rule fails here
// instead of silently weakening CI (ISSUE 3 satellite). Editing
// testdata/regress/fixture.go requires updating this table.
func TestRegressExactPositions(t *testing.T) {
	want := []string{
		"testdata/regress/fixture.go:37:9 locklog",
		"testdata/regress/fixture.go:41:16 mutexcopy",
		"testdata/regress/fixture.go:47:9 wallclock",
		"testdata/regress/fixture.go:52:9 globalrand",
		"testdata/regress/fixture.go:57:9 ctxroot",
		"testdata/regress/fixture.go:62:14 metricname",
		"testdata/regress/fixture.go:66:25 errfmt",
		"testdata/regress/fixture.go:71:2 mapiter",
		"testdata/regress/fixture.go:80:2 spanend",
		"testdata/regress/fixture.go:90:9 clockflow",
		"testdata/regress/fixture.go:102:9 hotalloc",
		"testdata/regress/fixture.go:116:2 lockorder",
	}
	diags := runFixture(t, "regress", "mburst/internal/simnet/regressfix")
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d:%d %s", d.File, d.Line, d.Col, d.Rule))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	// RunPackages sorts by position, so the comparison is order-exact.
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
	// One rule, one seed: every rule must appear exactly once.
	rules := make(map[string]int)
	for _, d := range diags {
		rules[d.Rule]++
	}
	for _, name := range RuleNames() {
		if rules[name] != 1 {
			t.Errorf("rule %s fired %d times in the regress fixture, want exactly 1", name, rules[name])
		}
	}
}
