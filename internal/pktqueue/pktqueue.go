// Package pktqueue is a packet-granularity egress-port model used to
// validate the fluid approximation the main simulator makes (DESIGN.md §4:
// "Fluid-per-tick traffic, statistical packet mix").
//
// The ASIC model advances whole ticks of bytes; this package queues and
// serializes individual packets against a finite buffer. Driving both with
// identical offered traffic and comparing transmitted bytes, drop counts
// and queue peaks (see TestFluidModelAgreesWithPacketModel) bounds the
// error the fluid shortcut introduces at the counter level — which is the
// only level the paper's analyses observe.
package pktqueue

import (
	"fmt"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// Packet is one arrival.
type Packet struct {
	// Arrival is when the last bit of the packet reaches the egress
	// queue. Packets must be enqueued in non-decreasing arrival order.
	Arrival simclock.Time
	// Size is the packet length in bytes.
	Size int
}

// Port is a single egress port with a tail-drop FIFO of bounded byte
// depth, serializing at line rate.
type Port struct {
	speed       uint64
	bufferBytes int

	now     simclock.Time
	queue   int     // bytes waiting (excluding the bit currently on the wire)
	partial float64 // bytes of the head already serialized

	txBytes   uint64
	txPackets uint64
	drops     uint64
	peakQueue int
}

// New returns a port with the given line rate and buffer depth.
func New(speedBps uint64, bufferBytes int) *Port {
	if speedBps == 0 {
		panic("pktqueue: zero speed")
	}
	if bufferBytes <= 0 {
		panic("pktqueue: non-positive buffer")
	}
	return &Port{speed: speedBps, bufferBytes: bufferBytes}
}

// Now returns the port's current time.
func (p *Port) Now() simclock.Time { return p.now }

// QueueBytes returns the current backlog.
func (p *Port) QueueBytes() int { return p.queue }

// TxBytes returns cumulative transmitted bytes.
func (p *Port) TxBytes() uint64 { return p.txBytes }

// TxPackets returns cumulative transmitted packets (counted when their
// last byte leaves; partially sent packets at the end of a run count
// their serialized bytes but not the packet).
func (p *Port) TxPackets() uint64 { return p.txPackets }

// Drops returns cumulative tail drops (packets).
func (p *Port) Drops() uint64 { return p.drops }

// PeakQueue returns the maximum backlog observed.
func (p *Port) PeakQueue() int { return p.peakQueue }

// Advance drains the queue up to time t.
func (p *Port) Advance(t simclock.Time) {
	if t.Before(p.now) {
		panic(fmt.Sprintf("pktqueue: time moved backwards %v -> %v", p.now, t))
	}
	budget := float64(p.speed) / 8 * t.Sub(p.now).Seconds()
	p.now = t
	drained := budget
	if avail := float64(p.queue) - p.partial; drained > avail {
		drained = avail
	}
	if drained > 0 {
		p.partial += drained
		p.txBytes += uint64(drained + 0.5)
		// Retire fully-serialized head bytes from the queue. We track
		// only aggregate bytes, so retire floor(partial) whole bytes.
		whole := int(p.partial)
		p.queue -= whole
		p.partial -= float64(whole)
	}
}

// Enqueue admits a packet (after advancing to its arrival time) or tail-
// drops it when the buffer is full.
func (p *Port) Enqueue(pkt Packet) {
	if pkt.Size <= 0 {
		panic("pktqueue: non-positive packet size")
	}
	p.Advance(pkt.Arrival)
	if p.queue+pkt.Size > p.bufferBytes {
		p.drops++
		return
	}
	p.queue += pkt.Size
	p.txPackets++ // will be transmitted eventually; simpler accounting
	if p.queue > p.peakQueue {
		p.peakQueue = p.queue
	}
}

// GeneratePoisson draws packets from a Poisson arrival process at the
// given byte rate over [start, start+dur), with sizes drawn from the
// count-mix implied by the byte profile. Useful for feeding both this
// model and the fluid ASIC with statistically identical traffic.
func GeneratePoisson(src *rng.Source, start simclock.Time, dur simclock.Duration,
	bytesPerSec float64, profile asic.TrafficProfile) []Packet {
	if bytesPerSec <= 0 || dur <= 0 {
		return nil
	}
	// Convert byte fractions to packet-count weights.
	var weights [asic.NumSizeBins]float64
	var meanSize float64
	{
		var total float64
		for i, f := range profile {
			weights[i] = f / asic.RepresentativeSize(i)
			total += weights[i]
		}
		if total == 0 {
			return nil
		}
		for i := range weights {
			weights[i] /= total
		}
		for i, w := range weights {
			meanSize += w * asic.RepresentativeSize(i)
		}
	}
	pktPerSec := bytesPerSec / meanSize
	var out []Packet
	t := float64(start.Nanoseconds())
	end := float64(start.Add(dur).Nanoseconds())
	for {
		t += src.Exp(1e9 / pktPerSec)
		if t >= end {
			return out
		}
		bin := src.Categorical(weights[:])
		out = append(out, Packet{
			Arrival: simclock.Time(int64(t)),
			Size:    int(asic.RepresentativeSize(bin)),
		})
	}
}
