package pktqueue

import (
	"math"
	"testing"

	"mburst/internal/asic"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

const gbps10 = uint64(10_000_000_000)

var fullMTU = asic.TrafficProfile{0, 0, 0, 0, 0, 1}

func TestConstructorGuards(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 100) },
		func() { New(gbps10, 0) },
		func() { New(gbps10, 100).Enqueue(Packet{Size: 0}) },
		func() {
			p := New(gbps10, 100)
			p.Advance(10)
			p.Advance(5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid call did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSerializationAtLineRate(t *testing.T) {
	p := New(gbps10, 1<<20)
	// A 1500B packet at 10G takes 1.2µs to serialize.
	p.Enqueue(Packet{Arrival: 0, Size: 1500})
	p.Advance(simclock.Time(simclock.Micros(1))) // 1250 bytes drained
	if p.QueueBytes() > 300 || p.QueueBytes() < 200 {
		t.Errorf("queue after 1µs = %d, want ~250", p.QueueBytes())
	}
	p.Advance(simclock.Time(simclock.Micros(2)))
	if p.QueueBytes() != 0 {
		t.Errorf("queue not drained: %d", p.QueueBytes())
	}
	if got := p.TxBytes(); got < 1499 || got > 1501 {
		t.Errorf("tx bytes = %d", got)
	}
	if p.TxPackets() != 1 {
		t.Errorf("tx packets = %d", p.TxPackets())
	}
}

func TestTailDrop(t *testing.T) {
	p := New(gbps10, 3000)
	// Three back-to-back packets: third exceeds the 3000B buffer.
	p.Enqueue(Packet{Arrival: 0, Size: 1500})
	p.Enqueue(Packet{Arrival: 0, Size: 1400})
	p.Enqueue(Packet{Arrival: 0, Size: 1500})
	if p.Drops() != 1 {
		t.Errorf("drops = %d, want 1", p.Drops())
	}
	if p.PeakQueue() > 3000 {
		t.Errorf("peak %d exceeds buffer", p.PeakQueue())
	}
}

func TestWorkConservation(t *testing.T) {
	// All accepted bytes eventually transmit.
	src := rng.New(3)
	p := New(gbps10, 64<<10)
	pkts := GeneratePoisson(src, 0, 10*simclock.Millisecond, 0.4*float64(gbps10)/8, fullMTU)
	var offered uint64
	for _, pkt := range pkts {
		p.Enqueue(pkt)
		offered += uint64(pkt.Size)
	}
	p.Advance(p.Now().Add(simclock.Millis(1))) // final drain
	dropped := p.Drops() * 1500
	if got := p.TxBytes() + uint64(p.QueueBytes()) + dropped; absDiff(got, offered) > uint64(len(pkts)) {
		t.Errorf("conservation: tx+queue+drops = %d, offered = %d", got, offered)
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestGeneratePoissonStatistics(t *testing.T) {
	src := rng.New(7)
	rate := 0.5 * float64(gbps10) / 8 // bytes/sec
	dur := 50 * simclock.Millisecond
	pkts := GeneratePoisson(src, 0, dur, rate, fullMTU)
	var total float64
	for _, p := range pkts {
		total += float64(p.Size)
		if p.Size != 1500 {
			t.Fatalf("MTU profile produced %dB packet", p.Size)
		}
	}
	want := rate * dur.Seconds()
	if math.Abs(total-want) > 0.05*want {
		t.Errorf("generated %v bytes, want ~%v", total, want)
	}
	// Arrivals are ordered.
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Arrival < pkts[i-1].Arrival {
			t.Fatal("arrivals out of order")
		}
	}
	if GeneratePoisson(src, 0, dur, 0, fullMTU) != nil {
		t.Error("zero rate should produce nil")
	}
	if GeneratePoisson(src, 0, dur, rate, asic.TrafficProfile{}) != nil {
		t.Error("zero profile should produce nil")
	}
}

// TestFluidModelAgreesWithPacketModel is the validation experiment for the
// simulator's core approximation: feed the same Poisson packet stream to
// (a) this packet-level port and (b) the fluid ASIC (as per-tick byte
// sums), and compare the counter-level outcomes the paper's analyses
// consume.
func TestFluidModelAgreesWithPacketModel(t *testing.T) {
	src := rng.New(11)
	const bufferBytes = 100 << 10
	dur := 50 * simclock.Millisecond
	tick := 5 * simclock.Microsecond

	// ON/OFF traffic: 200µs at 150% line rate (builds queue + drops),
	// 800µs off, repeated — a µburst caricature.
	var pkts []Packet
	for start := simclock.Time(0); start.Before(simclock.Time(dur)); start = start.Add(simclock.Millis(1)) {
		burst := GeneratePoisson(src, start, 200*simclock.Microsecond, 1.5*float64(gbps10)/8, fullMTU)
		pkts = append(pkts, burst...)
	}

	// (a) Packet model.
	pp := New(gbps10, bufferBytes)
	for _, pkt := range pkts {
		pp.Enqueue(pkt)
	}
	pp.Advance(simclock.Time(dur).Add(simclock.Millis(2)))

	// (b) Fluid ASIC: per-tick byte sums of the identical packet stream.
	sw := asic.New(asic.Config{
		PortSpeeds:  []uint64{gbps10},
		BufferBytes: bufferBytes,
		Alpha:       1000, // single port: effectively a plain FIFO bound
	})
	idx := 0
	for now := simclock.Time(0); now.Before(simclock.Time(dur) + simclock.Time(simclock.Millis(2))); now = now.Add(tick) {
		var bytes float64
		for idx < len(pkts) && pkts[idx].Arrival.Before(now.Add(tick)) {
			bytes += float64(pkts[idx].Size)
			idx++
		}
		if bytes > 0 {
			sw.OfferTx(0, bytes, fullMTU)
		}
		sw.Tick(tick)
	}

	// Compare the counter-level outcomes.
	fluidTx := float64(sw.Port(0).Bytes(asic.TX))
	pktTx := float64(pp.TxBytes())
	if rel := math.Abs(fluidTx-pktTx) / pktTx; rel > 0.02 {
		t.Errorf("tx bytes diverge: fluid %v vs packet %v (%.1f%%)", fluidTx, pktTx, rel*100)
	}
	fluidDrops := float64(sw.Port(0).Drops())
	pktDrops := float64(pp.Drops())
	if pktDrops > 0 {
		if rel := math.Abs(fluidDrops-pktDrops) / pktDrops; rel > 0.25 {
			t.Errorf("drops diverge: fluid %v vs packet %v (%.0f%%)", fluidDrops, pktDrops, rel*100)
		}
	}
}
