package ptrace

import (
	"sort"

	"mburst/internal/simclock"
)

// This file aggregates raw spans into the shapes the /tracez waterfall
// and cmd/mbtrace render: per-trace views, per-stage latency breakdowns,
// and the critical path of a trace. Everything here is a pure function of
// the span set, so renderings of byte-identical dumps are themselves
// byte-identical.

// TraceView groups one trace's spans, in canonical stage order.
type TraceView struct {
	ID    TraceID
	Rack  uint32
	Epoch uint32
	// Start/Stop bound the whole chain; Samples/Bytes describe the batch
	// (taken from the first span that carries them).
	Start   simclock.Time
	Stop    simclock.Time
	Samples int
	Bytes   int
	Spans   []Span
}

// Duration returns the trace's end-to-end extent.
func (v TraceView) Duration() simclock.Duration { return v.Stop.Sub(v.Start) }

// GroupTraces assembles per-trace views from a span set, sorted by start
// time then trace ID.
func GroupTraces(spans []Span) []TraceView {
	byID := make(map[TraceID]*TraceView)
	var order []TraceID
	for i := range spans {
		sp := &spans[i]
		v := byID[sp.Trace]
		if v == nil {
			v = &TraceView{ID: sp.Trace, Rack: sp.Rack, Epoch: sp.Epoch, Start: sp.Start, Stop: sp.Stop}
			byID[sp.Trace] = v
			order = append(order, sp.Trace)
		}
		if sp.Start < v.Start {
			v.Start = sp.Start
		}
		if sp.Stop > v.Stop {
			v.Stop = sp.Stop
		}
		if v.Samples == 0 && sp.Samples > 0 {
			v.Samples = sp.Samples
		}
		if v.Bytes == 0 && sp.Bytes > 0 {
			v.Bytes = sp.Bytes
		}
		v.Spans = append(v.Spans, *sp)
	}
	out := make([]TraceView, 0, len(order))
	for _, id := range order {
		v := byID[id]
		sortSpans(v.Spans)
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SlowestN returns the n traces with the largest end-to-end duration,
// slowest first (ties broken by trace ID for determinism).
func SlowestN(views []TraceView, n int) []TraceView {
	out := append([]TraceView(nil), views...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Duration(), out[j].Duration()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// StageStat summarizes one stage's latency distribution across a span
// set.
type StageStat struct {
	Stage Stage
	Count int
	Min   simclock.Duration
	P50   simclock.Duration
	P99   simclock.Duration
	Max   simclock.Duration
	Total simclock.Duration
}

// StageBreakdown computes per-stage latency statistics, in chain order.
// Stages with no spans are omitted.
func StageBreakdown(spans []Span) []StageStat {
	byStage := make(map[Stage][]simclock.Duration)
	for i := range spans {
		byStage[spans[i].Stage] = append(byStage[spans[i].Stage], spans[i].Duration())
	}
	var out []StageStat
	for _, stage := range Stages {
		ds := byStage[stage]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := StageStat{
			Stage: stage,
			Count: len(ds),
			Min:   ds[0],
			P50:   ds[(len(ds)-1)/2],
			P99:   ds[(len(ds)-1)*99/100],
			Max:   ds[len(ds)-1],
		}
		for _, d := range ds {
			st.Total += d
		}
		out = append(out, st)
	}
	return out
}

// PathSeg is one segment of a trace's critical path: either time inside a
// stage span or an uncovered gap between stages.
type PathSeg struct {
	// Stage is the owning stage, or "" for a gap.
	Stage Stage
	Start simclock.Time
	Stop  simclock.Time
}

// Duration returns the segment's extent.
func (s PathSeg) Duration() simclock.Duration { return s.Stop.Sub(s.Start) }

// CriticalPath decomposes a trace's [Start, Stop] extent into the
// sequence of span segments that cover it — the chain a batch's latency
// actually flowed through. When spans overlap (a backoff child inside
// client.send), the earlier-ranked span owns the overlap; uncovered time
// appears as gap segments with an empty Stage.
func CriticalPath(v TraceView) []PathSeg {
	var out []PathSeg
	cur := v.Start
	for i := range v.Spans {
		sp := &v.Spans[i]
		if sp.Stop <= cur {
			continue
		}
		if sp.Start > cur {
			out = append(out, PathSeg{Start: cur, Stop: sp.Start})
			cur = sp.Start
		}
		out = append(out, PathSeg{Stage: sp.Stage, Start: cur, Stop: sp.Stop})
		cur = sp.Stop
	}
	if cur < v.Stop {
		out = append(out, PathSeg{Start: cur, Stop: v.Stop})
	}
	return out
}
