package ptrace

import (
	"testing"

	"mburst/internal/simclock"
)

func TestGroupTracesAndSlowest(t *testing.T) {
	tr := New(Config{Capacity: 64})
	chainOneBatch(tr, 1, at(0), 8, 100)     // 8 samples → short chain
	chainOneBatch(tr, 2, at(1000), 64, 800) // heavier batch → longer chain
	views := GroupTraces(tr.Snapshot())
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	if views[0].Rack != 1 || views[1].Rack != 2 {
		t.Fatalf("views not in start order: racks %d, %d", views[0].Rack, views[1].Rack)
	}
	for _, v := range views {
		if len(v.Spans) != 7 {
			t.Errorf("rack %d view has %d spans, want 7", v.Rack, len(v.Spans))
		}
		if v.Spans[0].Stage != StagePollRead || v.Spans[len(v.Spans)-1].Stage != StageFiguresApply {
			t.Errorf("rack %d spans out of chain order", v.Rack)
		}
		if v.Duration() <= 0 {
			t.Errorf("rack %d view duration %v", v.Rack, v.Duration())
		}
	}
	slow := SlowestN(views, 1)
	if len(slow) != 1 || slow[0].Rack != 2 {
		t.Fatalf("SlowestN picked rack %d, want the heavier batch on rack 2", slow[0].Rack)
	}
}

func TestStageBreakdown(t *testing.T) {
	tr := New(Config{Capacity: 64})
	chainOneBatch(tr, 1, at(0), 8, 100)
	chainOneBatch(tr, 1, at(5000), 8, 100)
	stats := StageBreakdown(tr.Snapshot())
	if len(stats) != 7 {
		t.Fatalf("got %d stages, want 7", len(stats))
	}
	if stats[0].Stage != StagePollRead {
		t.Errorf("first stage %s, want poll.read", stats[0].Stage)
	}
	for _, st := range stats {
		if st.Count != 2 {
			t.Errorf("%s count %d, want 2", st.Stage, st.Count)
		}
		if st.Min > st.P50 || st.P50 > st.P99 || st.P99 > st.Max {
			t.Errorf("%s quantiles out of order: %+v", st.Stage, st)
		}
	}
}

func TestCriticalPathCoversTrace(t *testing.T) {
	tr := New(Config{Capacity: 64})
	chainOneBatch(tr, 1, at(0), 16, 200)
	v := GroupTraces(tr.Snapshot())[0]
	path := CriticalPath(v)
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	if path[0].Start != v.Start || path[len(path)-1].Stop != v.Stop {
		t.Fatalf("path [%v, %v] does not cover view [%v, %v]",
			path[0].Start, path[len(path)-1].Stop, v.Start, v.Stop)
	}
	var total simclock.Duration
	for i, seg := range path {
		if seg.Duration() < 0 {
			t.Errorf("segment %d negative: %+v", i, seg)
		}
		if i > 0 && seg.Start != path[i-1].Stop {
			t.Errorf("segment %d not contiguous: starts %v after %v", i, seg.Start, path[i-1].Stop)
		}
		total += seg.Duration()
	}
	if total != v.Duration() {
		t.Errorf("path total %v != view duration %v", total, v.Duration())
	}
	// A modeled chain is gapless: no empty-stage segments.
	for _, seg := range path {
		if seg.Stage == "" {
			t.Errorf("unexpected gap [%v, %v] in back-to-back chain", seg.Start, seg.Stop)
		}
	}
}

func TestCriticalPathChildOverlap(t *testing.T) {
	// A backoff child inside client.send: the parent (earlier rank) owns
	// the overlap and the path stays contiguous.
	tr := New(Config{Capacity: 16})
	h := tr.Batch(1, 0, at(0))
	send := h.Start(StageClientSend, at(0))
	bo := h.Start(StageClientBackoff, at(10)).SetParent(StageClientSend)
	bo.End(at(20))
	send.End(at(30))
	v := GroupTraces(tr.Snapshot())[0]
	path := CriticalPath(v)
	if len(path) != 1 || path[0].Stage != StageClientSend {
		t.Fatalf("path = %+v, want single client.send segment", path)
	}
}
