package ptrace

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
)

func at(us int64) simclock.Time { return simclock.Epoch.Add(simclock.Micros(us)) }

func TestBatchIDContentDerived(t *testing.T) {
	a := BatchID(1, 2, at(100))
	if b := BatchID(1, 2, at(100)); b != a {
		t.Fatalf("same content, different IDs: %x vs %x", a, b)
	}
	for _, other := range []TraceID{
		BatchID(2, 2, at(100)), BatchID(1, 3, at(100)), BatchID(1, 2, at(101)),
	} {
		if other == a {
			t.Fatalf("distinct content collided on %x", a)
		}
	}
}

func TestSamplingDeterminism(t *testing.T) {
	a := New(Config{Seed: 7, SampleRate: 0.25})
	b := New(Config{Seed: 7, SampleRate: 0.25})
	other := New(Config{Seed: 8, SampleRate: 0.25})
	kept, diff := 0, 0
	const n = 4096
	for i := 0; i < n; i++ {
		id := BatchID(uint32(i%16), 0, at(int64(i)*25))
		if a.SampledID(id) != b.SampledID(id) {
			t.Fatalf("same seed disagrees on %x", id)
		}
		if a.SampledID(id) {
			kept++
		}
		if a.SampledID(id) != other.SampledID(id) {
			diff++
		}
	}
	// Rate should land near 25%, and a different seed must select a
	// different subset.
	if kept < n/8 || kept > n/2 {
		t.Errorf("kept %d of %d at rate 0.25", kept, n)
	}
	if diff == 0 {
		t.Error("different seeds selected identical subsets")
	}
}

func TestSampleRateZeroKeepsAll(t *testing.T) {
	tr := New(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if !tr.SampledID(BatchID(uint32(i), 0, at(int64(i)))) {
			t.Fatal("rate 0 (trace everything) dropped a trace")
		}
	}
	off := New(Config{Seed: 1, Disabled: true})
	if off.Batch(1, 0, at(1)).Sampled() {
		t.Fatal("disabled tracer sampled a trace")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	h := tr.Batch(1, 0, at(1))
	if h.Sampled() {
		t.Fatal("nil tracer sampled")
	}
	sp := h.Start(StagePollRead, at(1))
	sp.SetBatch(1, 2).SetVerdict("x").SetFault("y").SetParent(StageClientSend)
	sp.End(at(2)) // must not panic
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
}

func record(t *Tracer, rack uint32, first simclock.Time, n int) {
	tr := t.Batch(rack, 0, first)
	sp := tr.Start(StagePollRead, first).SetBatch(n, n*8)
	sp.End(first.Add(simclock.Micros(int64(n))))
}

func TestRingWraparound(t *testing.T) {
	tr := New(Config{Capacity: 8})
	const total = 20
	for i := 0; i < total; i++ {
		record(tr, 1, at(int64(i)*100), 4)
	}
	if got := tr.Recorded(); got != total {
		t.Errorf("Recorded = %d, want %d", got, total)
	}
	if got := tr.Evicted(); got != total-8 {
		t.Errorf("Evicted = %d, want %d", got, total-8)
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("snapshot kept %d spans, want ring capacity 8", len(spans))
	}
	// The survivors are the newest 8 publishes; every one must be intact.
	for _, sp := range spans {
		if sp.Stage != StagePollRead || sp.Samples != 4 || sp.Duration() != simclock.Micros(4) {
			t.Errorf("corrupt span after wrap: %+v", sp)
		}
		if sp.Start < at(12*100) {
			t.Errorf("evicted span still visible: start %v", sp.Start)
		}
	}
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	if got := New(Config{Capacity: 100}).Capacity(); got != 128 {
		t.Errorf("capacity 100 rounded to %d, want 128", got)
	}
}

func TestSnapshotCanonicalOrder(t *testing.T) {
	// Publish the same spans in two different orders; snapshots must match.
	build := func(order []int) []Span {
		tr := New(Config{Capacity: 16})
		for _, i := range order {
			record(tr, uint32(i), at(int64(i)*50), i+1)
		}
		return tr.Snapshot()
	}
	a := build([]int{1, 2, 3, 4})
	b := build([]int{4, 2, 1, 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot order depends on publish order:\n a=%v\n b=%v", a, b)
	}
}

func TestConcurrentPublishAndServe(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Capacity: 64, Metrics: reg})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				record(tr, uint32(w), at(int64(w*1000+i)), 8)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				tr.SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/spans", nil))
				if rec.Code != 200 {
					t.Errorf("/spans status %d", rec.Code)
					return
				}
				rec = httptest.NewRecorder()
				tr.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?n=5", nil))
				if rec.Code != 200 {
					t.Errorf("/tracez status %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Recorded() != 4*500 {
		t.Errorf("Recorded = %d, want %d", tr.Recorded(), 4*500)
	}
}

func TestHandlersRenderSpans(t *testing.T) {
	tr := New(Config{Capacity: 16})
	chainOneBatch(tr, 3, at(100), 16, 200)

	rec := httptest.NewRecorder()
	tr.SpansHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/spans", nil))
	d, err := ReadDump(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	// One per-batch chain: every stage except backoff and the
	// out-of-chain durability stages (checkpoint, recover).
	if len(d.Spans) != 7 {
		t.Fatalf("dump has %d spans, want 7", len(d.Spans))
	}

	rec = httptest.NewRecorder()
	tr.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	body := rec.Body.String()
	for _, frag := range []string{"poll.read", "figures.apply", "accept", "rack 3"} {
		if !strings.Contains(body, frag) {
			t.Errorf("/tracez missing %q", frag)
		}
	}

	rec = httptest.NewRecorder()
	tr.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}
}

// chainOneBatch records a full 7-stage chain the way the pipeline does.
func chainOneBatch(t *Tracer, rack uint32, first simclock.Time, n, bytes int) {
	tr := t.Batch(rack, 0, first)
	last := first.Add(simclock.Micros(int64(n) * 25))
	poll := tr.Start(StagePollRead, first).SetBatch(n, bytes)
	poll.End(last)
	m := t.Model()
	for _, stage := range []Stage{
		StageWireEncode, StageClientSend, StageServerIngest,
		StageEpochGate, StageArchiveWrite, StageFiguresApply,
	} {
		s, e := m.Window(stage, last, n, bytes)
		sp := tr.Start(stage, s).SetBatch(n, bytes)
		if stage == StageEpochGate {
			sp.SetVerdict(VerdictAccept)
		}
		sp.End(e)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	tr := New(Config{Capacity: 16})
	chainOneBatch(tr, 1, at(0), 8, 100)
	var buf bytes.Buffer
	if err := tr.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	d, err := ReadDump(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Spans, tr.Snapshot()) {
		t.Fatal("dump round trip diverged from snapshot")
	}
	// Byte-identical re-serialization.
	var buf2 bytes.Buffer
	if err := tr.WriteDump(&buf2); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Fatal("two dumps of the same ring differ")
	}
}

func TestCostModelWindowsAreContiguous(t *testing.T) {
	m := DefaultCostModel()
	pollEnd := at(500)
	const n, bytes = 100, 1200
	prev := pollEnd
	for _, stage := range []Stage{
		StageWireEncode, StageClientSend, StageServerIngest,
		StageEpochGate, StageArchiveWrite, StageFiguresApply,
	} {
		s, e := m.Window(stage, pollEnd, n, bytes)
		if s != prev {
			t.Errorf("%s starts at %v, want %v (stages must be back-to-back)", stage, s, prev)
		}
		if e <= s {
			t.Errorf("%s has non-positive extent [%v, %v]", stage, s, e)
		}
		prev = e
	}
	if end := m.ChainEnd(pollEnd, n, bytes); end != prev {
		t.Errorf("ChainEnd = %v, want %v", end, prev)
	}
}

func TestMetricsFeed(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Capacity: 16, Metrics: reg})
	chainOneBatch(tr, 1, at(0), 8, 100)
	tr2 := New(Config{Seed: 3, SampleRate: 0.0001, Metrics: reg})
	_ = tr2 // second tracer shares the registry without panicking
	vals := map[string]float64{}
	for _, f := range reg.Snapshot().Families {
		total := 0.0
		for _, s := range f.Series {
			total += s.Value
		}
		vals[f.Name] = total
	}
	if vals["mburst_ptrace_spans_total"] != 7 {
		t.Errorf("spans_total = %v, want 7", vals["mburst_ptrace_spans_total"])
	}
	if vals["mburst_ptrace_traces_sampled_total"] != 1 {
		t.Errorf("sampled_total = %v, want 1", vals["mburst_ptrace_traces_sampled_total"])
	}
}
