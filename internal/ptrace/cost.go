package ptrace

import "mburst/internal/simclock"

// StageCost models one post-poll stage's latency as an affine function of
// the batch: Fixed + PerSample·samples + PerBytePs·bytes. All integer
// arithmetic — the model must be bit-reproducible across architectures.
type StageCost struct {
	// Fixed is the per-batch setup cost.
	Fixed simclock.Duration
	// PerSample is the marginal cost per sample.
	PerSample simclock.Duration
	// PerBytePs is the marginal cost per framed wire byte, in picoseconds
	// (sub-nanosecond per-byte rates — a 10 Gb/s link moves a byte in
	// 800 ps — do not fit a Duration).
	PerBytePs int64
}

// Dur evaluates the model for a batch of the given sample count and
// framed byte size.
func (c StageCost) Dur(samples, bytes int) simclock.Duration {
	return c.Fixed +
		c.PerSample*simclock.Duration(samples) +
		simclock.Duration(int64(bytes)*c.PerBytePs/1000)
}

// CostModel positions every post-poll stage of a batch's chain. The
// stages run back-to-back from the batch's final poll completion:
// encode, send, ingest, gate, archive, figures. Because the inputs
// (sample count, framed byte size, last sample time) are batch content,
// the client, the collector, and the campaign recorder independently
// compute identical span windows — that is what makes cross-process
// traces line up without any clock exchange.
type CostModel struct {
	Encode  StageCost
	Send    StageCost
	Ingest  StageCost
	Gate    StageCost
	Archive StageCost
	Figures StageCost
}

// DefaultCostModel returns the standard pipeline model. The constants
// are order-of-magnitude calibrations for the reference pipeline: varint
// encoding tens of ns/sample, a 10 Gb/s-class send path at 800 ps/byte,
// decode slightly costlier than encode, a constant-time gate, a
// disk-bound archive, and a cheap streaming-figures update.
func DefaultCostModel() CostModel {
	return CostModel{
		Encode:  StageCost{Fixed: 200, PerSample: 15},
		Send:    StageCost{Fixed: 5 * simclock.Microsecond, PerBytePs: 800},
		Ingest:  StageCost{Fixed: 300, PerSample: 20},
		Gate:    StageCost{Fixed: 400},
		Archive: StageCost{Fixed: 10 * simclock.Microsecond, PerBytePs: 2000},
		Figures: StageCost{Fixed: 100, PerSample: 25},
	}
}

// chain returns the post-poll stages in execution order with their
// models.
func (m CostModel) chain() [6]struct {
	stage Stage
	cost  StageCost
} {
	return [6]struct {
		stage Stage
		cost  StageCost
	}{
		{StageWireEncode, m.Encode},
		{StageClientSend, m.Send},
		{StageServerIngest, m.Ingest},
		{StageEpochGate, m.Gate},
		{StageArchiveWrite, m.Archive},
		{StageFiguresApply, m.Figures},
	}
}

// Window returns the modeled [start, stop] of stage for a batch whose
// final poll completed at pollEnd, with the given sample count and
// framed byte size. Requesting StagePollRead (whose extent is measured,
// not modeled) or an unknown stage returns [pollEnd, pollEnd].
func (m CostModel) Window(stage Stage, pollEnd simclock.Time, samples, bytes int) (simclock.Time, simclock.Time) {
	cur := pollEnd
	for _, link := range m.chain() {
		d := link.cost.Dur(samples, bytes)
		if link.stage == stage {
			return cur, cur.Add(d)
		}
		cur = cur.Add(d)
	}
	return pollEnd, pollEnd
}

// ChainEnd returns when the full modeled chain completes for a batch
// whose final poll completed at pollEnd.
func (m CostModel) ChainEnd(pollEnd simclock.Time, samples, bytes int) simclock.Time {
	cur := pollEnd
	for _, link := range m.chain() {
		cur = cur.Add(link.cost.Dur(samples, bytes))
	}
	return cur
}
