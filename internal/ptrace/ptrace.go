// Package ptrace is the measurement pipeline's deterministic span-tracing
// layer: it shows where an individual batch's time goes as it moves
// poll → encode → send → ingest → gate → archive → figures, the per-stage
// visibility the aggregate counters of internal/obs cannot provide.
//
// The paper's central trade-off (Table 1) is that measurement fidelity is
// bounded by the latency and cost of the collection pipeline itself, so
// the pipeline must be able to trace itself — without giving up the
// repository's reproducibility guarantee. Two design rules follow:
//
//   - Trace identity is content-derived. A batch's TraceID is a pure hash
//     of (rack, epoch, first-sample time); the client and the collector
//     compute the same ID independently, so their spans join at render
//     time with no wire-format change and no context propagation.
//   - Span times are simclock-stamped, never wall-clock. The poll.read
//     span covers the batch's sample interval directly; every post-poll
//     stage is positioned by a deterministic CostModel (an integer
//     function of the batch's sample count and framed byte size). A
//     campaign traced twice — at any worker count — produces
//     byte-identical span dumps.
//
// Spans land in a bounded lock-free ring buffer per process (atomic
// pointer slots; writers never block, old spans are overwritten), feed
// per-stage obs histograms, and are served as JSON at /spans plus an HTML
// waterfall at /tracez on the daemons' debug mux. cmd/mbtrace renders
// dumps offline. Deterministic head sampling (seeded through
// internal/rng) bounds overhead: whether a trace is sampled is a pure
// function of (Seed, TraceID), so every process sampling at the same rate
// with the same seed keeps the same traces.
package ptrace

import (
	"sort"
	"sync/atomic"

	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
)

// TraceID identifies one batch's journey through the pipeline. It is
// derived from batch content (see BatchID), never from a clock or global
// RNG, so independent processes agree on it.
type TraceID uint64

// BatchID derives the trace ID for a batch: a pure hash of the rack, the
// agent restart epoch, and the batch's first sample time. Any process
// holding the batch computes the same ID.
func BatchID(rack, epoch uint32, first simclock.Time) TraceID {
	h := mix64(uint64(rack)<<32 | uint64(epoch))
	h = mix64(h ^ uint64(first.Nanoseconds()))
	return TraceID(h)
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// permutation (the same mixer internal/rng seeds with).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stage names one pipeline stage. The values are stable API: they appear
// in span dumps, metric labels, and mbtrace output.
type Stage string

// The pipeline stages, in chain order.
const (
	StagePollRead      Stage = "poll.read"
	StageWireEncode    Stage = "wire.encode"
	StageClientSend    Stage = "client.send"
	StageClientBackoff Stage = "client.backoff" // child of client.send
	StageServerIngest  Stage = "server.ingest"
	StageEpochGate     Stage = "epoch.gate"
	StageArchiveWrite  Stage = "archive.write"
	StageFiguresApply  Stage = "figures.apply"
	// StageCheckpoint marks a collector durability checkpoint being
	// persisted; StageRecover marks an archived batch being replayed into
	// restored accumulators at restart. Both sit outside the per-batch
	// cost chain, so their spans are positioned at the triggering batch's
	// chain position with zero modeled width.
	StageCheckpoint Stage = "collector.checkpoint"
	StageRecover    Stage = "collector.recover"
)

// Stages lists every stage in chain order (backoff immediately after its
// parent client.send).
var Stages = []Stage{
	StagePollRead, StageWireEncode, StageClientSend, StageClientBackoff,
	StageServerIngest, StageEpochGate, StageArchiveWrite, StageFiguresApply,
	StageCheckpoint, StageRecover,
}

// rank orders stages for canonical snapshots and waterfalls.
func (s Stage) rank() int {
	for i, st := range Stages {
		if st == s {
			return i
		}
	}
	return len(Stages)
}

// Epoch-gate verdicts recorded as span attributes.
const (
	VerdictAccept      = "accept"
	VerdictDropStale   = "drop-stale"
	VerdictDropReorder = "drop-reorder"
)

// Span is one stage's occupancy of simulated time for one batch. Start
// and Stop are simclock instants; for poll.read they are the batch's
// first and last sample times, for every other stage they come from the
// tracer's CostModel.
type Span struct {
	Trace TraceID `json:"trace"`
	Stage Stage   `json:"stage"`
	// Parent is the enclosing stage for child spans (client.backoff under
	// client.send); empty for top-level stages.
	Parent Stage         `json:"parent,omitempty"`
	Rack   uint32        `json:"rack"`
	Epoch  uint32        `json:"epoch"`
	Start  simclock.Time `json:"start_ns"`
	Stop   simclock.Time `json:"end_ns"`
	// Samples and Bytes describe the batch at this stage (framed wire
	// size; see wire.EncodedSize).
	Samples int `json:"samples,omitempty"`
	Bytes   int `json:"bytes,omitempty"`
	// Verdict carries the epoch gate's accept/drop decision.
	Verdict string `json:"verdict,omitempty"`
	// Fault names the fault kinds active during the span ("stuck,stall"),
	// for poll.read spans recorded under injection.
	Fault string `json:"fault,omitempty"`

	t *Tracer
}

// Duration returns the span's extent.
func (sp *Span) Duration() simclock.Duration {
	if sp == nil {
		return 0
	}
	return sp.Stop.Sub(sp.Start)
}

// SetBatch records the batch shape. Nil-safe; returns sp for chaining.
func (sp *Span) SetBatch(samples, bytes int) *Span {
	if sp != nil {
		sp.Samples, sp.Bytes = samples, bytes
	}
	return sp
}

// SetParent marks sp as a child of stage. Nil-safe.
func (sp *Span) SetParent(stage Stage) *Span {
	if sp != nil {
		sp.Parent = stage
	}
	return sp
}

// SetVerdict records a gate verdict. Nil-safe.
func (sp *Span) SetVerdict(v string) *Span {
	if sp != nil {
		sp.Verdict = v
	}
	return sp
}

// SetFault records the active fault kinds. Nil-safe.
func (sp *Span) SetFault(f string) *Span {
	if sp != nil {
		sp.Fault = f
	}
	return sp
}

// End completes the span at the simclock instant at and publishes it to
// the tracer's ring and per-stage histogram. Every Start must be paired
// with an End on all return paths (machine-checked by mblint's spanend
// rule). Nil-safe: ending a span from an unsampled trace is a no-op.
func (sp *Span) End(at simclock.Time) {
	if sp == nil || sp.t == nil {
		return
	}
	sp.Stop = at
	sp.t.publish(sp)
}

// Config parameterizes a Tracer.
type Config struct {
	// Capacity is the span ring size, rounded up to a power of two
	// (default 4096). The ring bounds memory; once full, the oldest spans
	// are overwritten.
	Capacity int
	// SampleRate is the fraction of traces kept, in [0, 1]; 0 means
	// trace everything (head sampling is opt-in). Whether a given TraceID
	// is sampled is a pure function of (Seed, TraceID).
	SampleRate float64
	// Disabled drops every trace — the off switch, since SampleRate 0
	// means "all".
	Disabled bool
	// Seed keys the deterministic sampler (via internal/rng).
	Seed uint64
	// Metrics, when non-nil, receives tracer telemetry: spans recorded,
	// traces sampled/unsampled, and one latency histogram per stage.
	Metrics *obs.Registry
	// Model positions post-poll stages; nil selects DefaultCostModel.
	Model *CostModel
}

// Tracer records spans into a bounded lock-free ring. All methods are
// safe for concurrent use; a nil *Tracer is a no-op, so pipeline code
// instruments unconditionally.
type Tracer struct {
	model CostModel

	// key/thresh implement deterministic head sampling: a trace is kept
	// iff mix64(id ^ key) <= thresh.
	key    uint64
	thresh uint64

	slots []atomic.Pointer[Span]
	mask  uint64
	// cursor counts publishes; slot = (cursor-1) & mask.
	cursor atomic.Uint64

	spans     *obs.Counter
	sampled   *obs.Counter
	unsampled *obs.Counter
	stageHist map[Stage]*obs.Histogram
}

// DefaultCapacity is the ring size when Config.Capacity is zero.
const DefaultCapacity = 4096

// New builds a tracer from cfg.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	capacity = ceilPow2(capacity)
	t := &Tracer{
		slots: make([]atomic.Pointer[Span], capacity),
		mask:  uint64(capacity - 1),
	}
	if cfg.Model != nil {
		t.model = *cfg.Model
	} else {
		t.model = DefaultCostModel()
	}
	// The sampler key is drawn from a labeled rng split so it is
	// independent of every other stream derived from the same seed.
	t.key = rng.New(cfg.Seed).Split("ptrace/sampler").Uint64()
	switch {
	case cfg.Disabled:
		t.thresh = 0
	case cfg.SampleRate <= 0 || cfg.SampleRate >= 1:
		t.thresh = ^uint64(0)
	default:
		t.thresh = uint64(cfg.SampleRate * float64(^uint64(0)))
	}
	if reg := cfg.Metrics; reg != nil {
		t.spans = reg.Counter("mburst_ptrace_spans_total",
			"Pipeline spans published to the trace ring.")
		t.sampled = reg.Counter("mburst_ptrace_traces_sampled_total",
			"Batch traces kept by the deterministic head sampler.")
		t.unsampled = reg.Counter("mburst_ptrace_traces_dropped_total",
			"Batch traces dropped by the deterministic head sampler.")
		t.stageHist = make(map[Stage]*obs.Histogram, len(Stages))
		for _, st := range Stages {
			t.stageHist[st] = reg.Histogram("mburst_ptrace_stage_latency_us",
				"Per-stage pipeline span latency in simulated microseconds.",
				obs.DefLatencyBucketsUS, obs.L("stage", string(st)))
		}
	}
	return t
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Model returns the tracer's cost model (the zero model for nil).
func (t *Tracer) Model() CostModel {
	if t == nil {
		return CostModel{}
	}
	return t.model
}

// Capacity returns the ring size in slots (0 for nil).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Recorded returns how many spans have been published (including any
// since overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Evicted returns how many spans have been overwritten by ring wrap.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	c := t.cursor.Load()
	if c <= uint64(len(t.slots)) {
		return 0
	}
	return c - uint64(len(t.slots))
}

// SampledID reports whether the sampler keeps the given trace ID — a pure
// function of (Seed, id). A nil tracer samples nothing.
func (t *Tracer) SampledID(id TraceID) bool {
	if t == nil {
		return false
	}
	return mix64(uint64(id)^t.key) <= t.thresh
}

// Trace is a per-batch handle. The zero Trace (unsampled, or from a nil
// tracer) starts nil spans whose methods are all no-ops, so call sites
// never branch on sampling.
type Trace struct {
	t     *Tracer
	id    TraceID
	rack  uint32
	epoch uint32
}

// Batch returns the trace handle for a batch, applying the sampler.
func (t *Tracer) Batch(rack, epoch uint32, first simclock.Time) Trace {
	if t == nil {
		return Trace{}
	}
	id := BatchID(rack, epoch, first)
	if !t.SampledID(id) {
		t.unsampled.Inc()
		return Trace{}
	}
	t.sampled.Inc()
	return Trace{t: t, id: id, rack: rack, epoch: epoch}
}

// Sampled reports whether this trace is being recorded.
func (tr Trace) Sampled() bool { return tr.t != nil }

// ID returns the trace ID (0 for an unsampled handle).
func (tr Trace) ID() TraceID { return tr.id }

// Start opens a span for stage at the simclock instant at. It returns
// nil for an unsampled trace; a nil span's setters and End are no-ops.
func (tr Trace) Start(stage Stage, at simclock.Time) *Span {
	if tr.t == nil {
		return nil
	}
	return &Span{
		Trace: tr.id,
		Stage: stage,
		Rack:  tr.rack,
		Epoch: tr.epoch,
		Start: at,
		Stop:  at,
		t:     tr.t,
	}
}

// publish copies the span into the next ring slot (lock-free: one atomic
// fetch-add for the slot, one atomic pointer store) and feeds the stage
// histogram.
func (t *Tracer) publish(sp *Span) {
	cp := *sp
	cp.t = nil
	idx := t.cursor.Add(1) - 1
	t.slots[idx&t.mask].Store(&cp)
	t.spans.Inc()
	if t.stageHist != nil {
		if h := t.stageHist[cp.Stage]; h != nil {
			h.Observe(float64(cp.Duration()) / float64(simclock.Microsecond))
		}
	}
}

// Snapshot copies the ring's current spans in canonical order: by trace
// ID, then stage rank, then start time. The order is a pure function of
// the span set, so two runs that recorded the same spans — in any
// interleaving — snapshot identically.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if sp := t.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans canonically (trace, stage rank, start, stop,
// then remaining fields for total order).
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if ra, rb := a.Stage.rank(), b.Stage.rank(); ra != rb {
			return ra < rb
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Stop != b.Stop {
			return a.Stop < b.Stop
		}
		return a.Verdict < b.Verdict
	})
}
