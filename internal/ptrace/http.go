package ptrace

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
)

// Dump is the JSON shape served at /spans and written by mbsim -trace:
// the ring's spans in canonical order. Because the order is canonical and
// span times are simulated, dumps of equivalent runs are byte-identical.
type Dump struct {
	Spans []Span `json:"spans"`
}

// Dump snapshots the ring into the serializable form.
func (t *Tracer) Dump() Dump { return Dump{Spans: t.Snapshot()} }

// WriteDump writes the canonical JSON dump to w.
func (t *Tracer) WriteDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}

// ReadDump parses a span dump (the /spans response or an mbsim -trace
// file).
func ReadDump(r io.Reader) (Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dump{}, fmt.Errorf("ptrace: decoding dump: %w", err)
	}
	return d, nil
}

// MergeDumps combines span dumps recorded by several tracers — one per
// collector shard in a fleet campaign — into one canonical dump, as if
// a single tracer had recorded every span. Span IDs derive from batch
// content, so client and server halves recorded on different shards
// still join into whole traces after the merge.
func MergeDumps(dumps ...Dump) Dump {
	var out Dump
	for _, d := range dumps {
		out.Spans = append(out.Spans, d.Spans...)
	}
	sortSpans(out.Spans)
	return out
}

// SpansHandler serves the JSON dump — mounted at /spans on the daemons'
// debug mux.
func (t *Tracer) SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteDump(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// tracezTmpl renders the waterfall page: a stage-latency summary and the
// slowest traces as horizontal bar charts over simulated time.
var tracezTmpl = template.Must(template.New("tracez").Funcs(template.FuncMap{
	"barLeft":  barLeft,
	"barWidth": barWidth,
}).Parse(`<!DOCTYPE html>
<html><head><title>tracez</title><style>
body { font-family: monospace; margin: 1.5em; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; }
.lane { position: relative; height: 14px; background: #f4f4f4; width: 640px; }
.bar { position: absolute; height: 12px; top: 1px; background: #4a90d9; }
.bar.child { background: #d98f4a; }
.stage { display: inline-block; width: 14ch; }
.trace { margin-bottom: 1em; }
</style></head><body>
<h2>pipeline traces</h2>
<p>{{.Recorded}} spans recorded, {{.Evicted}} evicted, {{len .Views}} traces in ring</p>
<table><tr><th>stage</th><th>count</th><th>min</th><th>p50</th><th>p99</th><th>max</th></tr>
{{range .Stats}}<tr><td style="text-align:left">{{.Stage}}</td><td>{{.Count}}</td><td>{{.Min}}</td><td>{{.P50}}</td><td>{{.P99}}</td><td>{{.Max}}</td></tr>
{{end}}</table>
<h2>slowest traces</h2>
{{range .Views}}<div class="trace">
<div>trace {{printf "%016x" .ID}} rack {{.Rack}} epoch {{.Epoch}} samples {{.Samples}} bytes {{.Bytes}} span {{.Duration}}</div>
{{$v := .}}{{range .Spans}}<div><span class="stage">{{.Stage}}</span><span class="lane"><span class="bar{{if .Parent}} child{{end}}" style="left:{{barLeft $v .}}px;width:{{barWidth $v .}}px"></span></span> {{.Duration}}{{if .Verdict}} [{{.Verdict}}]{{end}}{{if .Fault}} fault={{.Fault}}{{end}}</div>
{{end}}</div>
{{end}}</body></html>
`))

// laneWidth is the waterfall lane width in pixels.
const laneWidth = 640

// barLeft/barWidth scale a span into its trace's lane.
func barLeft(v TraceView, sp Span) int {
	if v.Duration() <= 0 {
		return 0
	}
	return int(int64(laneWidth) * int64(sp.Start.Sub(v.Start)) / int64(v.Duration()))
}

func barWidth(v TraceView, sp Span) int {
	if v.Duration() <= 0 {
		return 1
	}
	w := int(int64(laneWidth) * int64(sp.Duration()) / int64(v.Duration()))
	if w < 1 {
		w = 1
	}
	return w
}

// tracezPage is the template's input.
type tracezPage struct {
	Recorded uint64
	Evicted  uint64
	Stats    []StageStat
	Views    []TraceView
}

// TracezHandler serves the HTML waterfall — mounted at /tracez on the
// daemons' debug mux. ?n=N bounds the number of traces shown (default
// 20, slowest first).
func (t *Tracer) TracezHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n := 20
		if q := r.URL.Query().Get("n"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
		}
		spans := t.Snapshot()
		page := tracezPage{
			Recorded: t.Recorded(),
			Evicted:  t.Evicted(),
			Stats:    StageBreakdown(spans),
			Views:    SlowestN(GroupTraces(spans), n),
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := tracezTmpl.Execute(w, page); err != nil {
			// The header is already out; best effort.
			_ = err
		}
	})
}
