package plot

import (
	"math"
	"strings"
	"testing"

	"mburst/internal/rng"
	"mburst/internal/stats"
)

func expECDF(seed uint64, mean float64, n int) *stats.ECDF {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Exp(mean)
	}
	return stats.NewECDF(xs)
}

func TestCDFBasics(t *testing.T) {
	out := CDF(CDFConfig{XLabel: "burst duration (µs)"},
		Series{Name: "web", ECDF: expECDF(1, 30, 1000)},
		Series{Name: "hadoop", ECDF: expECDF(2, 100, 1000)},
	)
	if !strings.Contains(out, "web (n=1000)") || !strings.Contains(out, "hadoop (n=1000)") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Errorf("y ticks missing:\n%s", out)
	}
	if !strings.Contains(out, "burst duration (µs)") {
		t.Error("x label missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("curve marks missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestCDFLogScale(t *testing.T) {
	out := CDF(CDFConfig{LogX: true, XLabel: "gap (µs)"},
		Series{Name: "gaps", ECDF: expECDF(3, 500, 500)})
	if !strings.Contains(out, "log scale") {
		t.Error("log scale annotation missing")
	}
}

func TestCDFEmpty(t *testing.T) {
	if out := CDF(CDFConfig{}); out != "(no data)\n" {
		t.Errorf("empty plot = %q", out)
	}
	out := CDF(CDFConfig{}, Series{Name: "empty", ECDF: stats.NewECDF(nil)})
	if out != "(no data)\n" {
		t.Errorf("all-empty plot = %q", out)
	}
}

func TestCDFMixedEmptyAndData(t *testing.T) {
	out := CDF(CDFConfig{},
		Series{Name: "has", ECDF: expECDF(5, 10, 100)},
		Series{Name: "empty", ECDF: stats.NewECDF(nil)},
	)
	if !strings.Contains(out, "empty (n=0)") {
		t.Error("empty series should still be listed")
	}
}

func TestCDFSingleValue(t *testing.T) {
	// Degenerate distribution must not divide by zero.
	e := stats.NewECDF([]float64{25, 25, 25})
	out := CDF(CDFConfig{}, Series{Name: "const", ECDF: e})
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into plot:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{
		{1, 0.9, 0},
		{0.9, 1, math.NaN()},
		{0, math.NaN(), 1},
	}
	out := Heatmap(m)
	if !strings.Contains(out, "@") {
		t.Error("strong correlation should render as @")
	}
	if !strings.Contains(out, "?") {
		t.Error("NaN should render as ?")
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 4 {
		t.Errorf("unexpected heatmap shape:\n%s", out)
	}
}

func TestBoxplots(t *testing.T) {
	groups := map[int]stats.BoxplotSummary{
		2: stats.Boxplot([]float64{0.1, 0.15, 0.2}),
		8: stats.Boxplot([]float64{0.5, 0.7, 0.9}),
	}
	out := Boxplots(groups, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 groups + axis
	if len(lines) != 4 {
		t.Fatalf("boxplot shape:\n%s", out)
	}
	if !strings.Contains(lines[1], "2") || !strings.Contains(lines[2], "8") {
		t.Error("groups not sorted")
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "|") {
		t.Error("box glyphs missing")
	}
}

func TestBoxplotsEmptyGroup(t *testing.T) {
	groups := map[int]stats.BoxplotSummary{0: stats.Boxplot(nil)}
	out := Boxplots(groups, 20)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"web", "cache", "hadoop"}, []float64{0.0, 0.99, 0.18}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bars shape:\n%s", out)
	}
	if !strings.Contains(lines[1], "99.0%") {
		t.Errorf("value missing: %s", lines[1])
	}
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Error("bar lengths not proportional")
	}
	// Clamping: out-of-range values must not panic or overflow.
	_ = Bars([]string{"a", "b"}, []float64{-0.5, 2.0}, 10)
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]uint64{0, 0, 50, 0, 0, 10, 0})
	runes := []rune(out)
	if len(runes) != 7 {
		t.Fatalf("sparkline length = %d", len(runes))
	}
	if runes[0] != '·' || runes[3] != '·' {
		t.Error("zeros should render as ·")
	}
	if runes[2] != '█' {
		t.Errorf("max should render full block, got %c", runes[2])
	}
	if runes[5] == '·' || runes[5] == '█' {
		t.Errorf("mid value rendered as %c", runes[5])
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}
