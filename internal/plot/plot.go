// Package plot renders the paper's figure types as terminal graphics:
// CDF step plots (Figs 3, 4, 6, 7), correlation heatmaps (Fig 8), grouped
// boxplots (Fig 10), bar charts (Figs 5, 9) and sparkline time series
// (Fig 2). The output is plain UTF-8 text so every figure can be eyeballed
// straight from mbreport/mbanalyze without a plotting stack.
//
// All renderers are pure: data in, string out. Sizes are in character
// cells; callers choose dimensions that fit their terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mburst/internal/stats"
)

// Series is one named curve on a CDF plot.
type Series struct {
	Name string
	ECDF *stats.ECDF
}

// CDFConfig controls CDF rendering.
type CDFConfig struct {
	// Width/Height are the plot area dimensions in cells (defaults 64×16).
	Width, Height int
	// LogX plots the x axis on a log10 scale (natural for Figs 3 and 4,
	// whose x ranges span orders of magnitude).
	LogX bool
	// XLabel annotates the x axis.
	XLabel string
}

func (c *CDFConfig) applyDefaults() {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 16
	}
}

// seriesMarks assigns each curve a distinct mark.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// CDF renders one or more empirical CDFs on shared axes. Curves with no
// data are listed but not drawn.
func CDF(cfg CDFConfig, series ...Series) string {
	cfg.applyDefaults()
	// Establish the x range across all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if s.ECDF == nil || s.ECDF.N() == 0 {
			continue
		}
		if v := s.ECDF.Min(); v < lo {
			lo = v
		}
		if v := s.ECDF.Max(); v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if cfg.LogX {
		if lo <= 0 {
			lo = math.Nextafter(0, 1)
			// Find the smallest positive value to anchor the log axis.
			small := math.Inf(1)
			for _, s := range series {
				if s.ECDF == nil {
					continue
				}
				for _, v := range s.ECDF.Values() {
					if v > 0 && v < small {
						small = v
					}
				}
			}
			if !math.IsInf(small, 1) {
				lo = small
			}
		}
		if hi <= lo {
			hi = lo * 10
		}
	} else if hi <= lo {
		hi = lo + 1
	}

	xOf := func(col int) float64 {
		f := float64(col) / float64(cfg.Width-1)
		if cfg.LogX {
			return lo * math.Pow(hi/lo, f)
		}
		return lo + f*(hi-lo)
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		if s.ECDF == nil || s.ECDF.N() == 0 {
			continue
		}
		mark := seriesMarks[si%len(seriesMarks)]
		for col := 0; col < cfg.Width; col++ {
			p := s.ECDF.At(xOf(col))
			row := int((1 - p) * float64(cfg.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= cfg.Height {
				row = cfg.Height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	for r, line := range grid {
		yTick := "      "
		switch r {
		case 0:
			yTick = "1.00 |"
		case cfg.Height / 2:
			yTick = "0.50 |"
		case cfg.Height - 1:
			yTick = "0.00 |"
		default:
			yTick = "     |"
		}
		b.WriteString(yTick)
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("     +" + strings.Repeat("-", cfg.Width) + "\n")
	axis := fmt.Sprintf("      %-12s", formatTick(lo))
	mid := formatTick(xOf(cfg.Width / 2))
	right := formatTick(hi)
	pad := cfg.Width - 12 - len(mid) - len(right)
	if pad < 1 {
		pad = 1
	}
	axis += mid + strings.Repeat(" ", pad) + right
	b.WriteString(axis + "\n")
	if cfg.XLabel != "" {
		scale := ""
		if cfg.LogX {
			scale = " (log scale)"
		}
		fmt.Fprintf(&b, "      x: %s%s\n", cfg.XLabel, scale)
	}
	for si, s := range series {
		n := 0
		if s.ECDF != nil {
			n = s.ECDF.N()
		}
		fmt.Fprintf(&b, "      %c %s (n=%d)\n", seriesMarks[si%len(seriesMarks)], s.Name, n)
	}
	return b.String()
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000 || math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// Heatmap renders a square matrix of values in [-1, 1] (Fig 8) with a
// character ramp over |value|; NaN cells print '?'.
func Heatmap(matrix [][]float64) string {
	ramp := []byte(" .:-=+*#%@")
	var b strings.Builder
	b.WriteString("    ")
	for j := range matrix {
		fmt.Fprintf(&b, "%2d", j%10)
	}
	b.WriteByte('\n')
	for i, row := range matrix {
		fmt.Fprintf(&b, "%3d ", i)
		for _, v := range row {
			switch {
			case math.IsNaN(v):
				b.WriteString(" ?")
			default:
				a := math.Abs(v)
				if a > 1 {
					a = 1
				}
				idx := int(a * float64(len(ramp)-1))
				b.WriteByte(' ')
				b.WriteByte(ramp[idx])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Boxplots renders grouped boxplot summaries (Fig 10) keyed by an integer
// group (e.g. hot-port count), one row per group, values assumed in [0,1].
func Boxplots(groups map[int]stats.BoxplotSummary, width int) string {
	if width <= 0 {
		width = 50
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	b.WriteString("group  n    |" + strings.Repeat(" ", width) + "|\n")
	for _, k := range keys {
		s := groups[k]
		line := []byte(strings.Repeat(" ", width))
		cell := func(v float64) int {
			c := int(v * float64(width-1))
			if c < 0 {
				c = 0
			}
			if c >= width {
				c = width - 1
			}
			return c
		}
		if s.N > 0 && !math.IsNaN(s.Median) {
			for c := cell(s.WhiskerLow); c <= cell(s.WhiskerHigh); c++ {
				line[c] = '-'
			}
			for c := cell(s.Q1); c <= cell(s.Q3); c++ {
				line[c] = '='
			}
			line[cell(s.Median)] = '|'
		}
		fmt.Fprintf(&b, "%5d %4d |%s|\n", k, s.N, line)
	}
	b.WriteString("            0" + strings.Repeat(" ", width-2) + "1\n")
	return b.String()
}

// Bars renders a labeled horizontal bar chart of fractions in [0,1]
// (Figs 5 and 9).
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	for i := 0; i < n; i++ {
		v := values[i]
		if math.IsNaN(v) || v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		fill := int(v*float64(width) + 0.5)
		fmt.Fprintf(&b, "%-*s %6.1f%% %s\n", labelW, labels[i], values[i]*100, strings.Repeat("█", fill))
	}
	return b.String()
}

// Sparkline renders a compact time series (Fig 2's drop bins) with eight
// vertical levels; zero values print as '·' so the "mostly empty bins"
// pattern is visible at a glance.
func Sparkline(values []uint64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if v == 0 {
			b.WriteRune('·')
			continue
		}
		idx := int(float64(v) / float64(max) * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
