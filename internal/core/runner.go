package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"mburst/internal/collector"
	"mburst/internal/fault"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// CounterPlan chooses the counters polled for one campaign cell. It is the
// single plan shape shared by byte campaigns, trace recording, the figure
// harnesses and the sweeps; the probe plan(rack, 0, 0) is what
// RecordCampaign persists into trace.Meta.Counters.
type CounterPlan func(rack topo.Rack, rackID, window int) []collector.CounterSpec

// Cell is one unit of campaign work: a single (app, rack, window)
// measurement. Every cell builds its own independently-seeded rack
// simulation, so cells are embarrassingly parallel; the paper's data sets
// (§4.2: 720 two-minute windows per app) are exactly this shape.
type Cell struct {
	// App selects the workload generating the rack's traffic.
	App workload.App
	// RackID / Window locate the cell in the campaign grid and determine
	// its seeds.
	RackID int
	Window int
	// Plan chooses the polled counters (nil is an error).
	Plan CounterPlan
	// Interval is the sampling interval (0 = ByteCampaignInterval).
	Interval simclock.Duration
	// Duration is the recorded duration (0 = Config.WindowDur). Fig 2's
	// continuous run is the one campaign that overrides it.
	Duration simclock.Duration
}

// describe locates the cell in error messages.
func (c Cell) describe() string {
	return fmt.Sprintf("%s/r%d/w%d", c.App, c.RackID, c.Window)
}

// CellRun is the raw outcome of one executed cell, handed to the collect
// callback on the worker goroutine that ran it.
type CellRun struct {
	Cell Cell
	// Net is the cell's rack simulation, positioned after the recorded
	// window (port speeds, drop totals and rack shape are readable).
	Net *simnet.Net
	// Samples are the captured counter samples in emission order.
	Samples []wire.Sample
	// MissRate / CPUBusy are the cell poller's Table 1 statistics.
	MissRate float64
	CPUBusy  float64
	// Faults is the fault schedule injected into this cell's poller (empty
	// when the campaign runs fault-free).
	Faults fault.Schedule
}

// Runner fans campaign cells across a bounded worker pool. Results are
// assembled in deterministic cell order regardless of the worker count, so
// a campaign's output is byte-identical whether it runs serially or on
// every core — the repository's reproducibility guarantee extends to the
// parallel path.
type Runner struct {
	e       *Experiment
	workers int
}

// Runner returns a runner over the experiment's worker pool
// (Config.Workers; 0 = runtime.GOMAXPROCS(0)).
func (e *Experiment) Runner() *Runner {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{e: e, workers: w}
}

// Workers returns the pool's bound.
func (r *Runner) Workers() int { return r.workers }

// Run executes every cell on the pool and calls visit(i, run) on the
// worker goroutine as each cell completes. visit implementations must be
// safe for concurrent calls with distinct indices (writing results[i] is
// the intended shape; shared sinks need their own lock). The first
// cancellation or error stops new cells from starting; already-running
// cells finish and their errors are aggregated.
func (r *Runner) Run(ctx context.Context, cells []Cell, visit func(i int, run *CellRun) error) error {
	if ctx == nil {
		//lint:ignore ctxroot nil-ctx convenience fallback for library callers; no parent to thread
		ctx = context.Background()
	}
	if len(cells) == 0 {
		return ctx.Err()
	}
	workers := r.workers
	if workers > len(cells) {
		workers = len(cells)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cctx.Err() != nil {
					continue // drain remaining jobs without running them
				}
				cell := cells[i]
				// Label the worker goroutine while it runs this cell so CPU
				// profiles attribute simulation time to campaign cells.
				labels := pprof.Labels(
					"cell", cell.describe(),
					"app", cell.App.String(),
					"rack", strconv.Itoa(cell.RackID),
				)
				pprof.Do(cctx, labels, func(context.Context) {
					r.e.cellsInFlight.Add(1)
					run, err := r.e.runCell(cell)
					if err == nil {
						err = visit(i, run)
					}
					r.e.cellsInFlight.Add(-1)
					if err != nil {
						fail(fmt.Errorf("core: cell %s: %w", cell.describe(), err))
						return
					}
					r.e.cellsCompleted.Inc()
				})
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: campaign canceled: %w", err)
	}
	return errors.Join(errs...)
}

// RunCells executes every cell on the runner's pool, reduces each raw run
// to its per-cell result via collect (called on the worker goroutine), and
// returns the results in cell order.
func RunCells[T any](ctx context.Context, r *Runner, cells []Cell, collect func(run *CellRun) (T, error)) ([]T, error) {
	out := make([]T, len(cells))
	err := r.Run(ctx, cells, func(i int, run *CellRun) error {
		v, err := collect(run)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// captureCap bounds the sample-slice preallocation for one cell; extreme
// interval/duration ratios (Table 1's 1 µs rows mostly miss) must not
// reserve memory for samples that will never exist.
const captureCap = 1 << 20

// runCell executes one cell: build the rack, warm it up, poll the plan's
// counters for the cell duration, and return the captured samples plus the
// poller's statistics. The poller's randomness derives from the cell
// coordinates (not a shared stream), so every window's jitter stream is
// distinct and the result is a pure function of (Config, Cell).
func (e *Experiment) runCell(c Cell) (*CellRun, error) {
	if c.Plan == nil {
		return nil, errors.New("no counter plan")
	}
	interval := c.Interval
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	dur := c.Duration
	if dur <= 0 {
		dur = e.cfg.WindowDur
	}
	net, err := e.newNet(c.App, c.RackID, c.Window)
	if err != nil {
		return nil, err
	}
	counters := c.Plan(net.Rack(), c.RackID, c.Window)

	n := int64(dur/interval) + 1
	if n > captureCap {
		n = captureCap
	}
	captured := make([]wire.Sample, 0, int(n)*len(counters))
	schedule := e.cellFaults(c, dur)
	var pollFault collector.PollFault
	if !schedule.Empty() {
		pollFault = fault.NewPollerInjector(schedule, e.faultM)
	}
	p, err := collector.NewPoller(collector.PollerConfig{
		Interval:      interval,
		Counters:      counters,
		DedicatedCore: true,
		Metrics:       e.pollerM,
		Fault:         pollFault,
	}, net.Switch(), e.pollSource(c, interval), collector.EmitterFunc(func(s wire.Sample) {
		captured = append(captured, s)
	}))
	if err != nil {
		return nil, err
	}
	net.Run(e.cfg.Warmup)
	// Clear the peak register so warmup bursts don't leak into the first
	// recorded sample.
	net.Switch().ReadPeakBufferAndClear()
	p.Install(net.Scheduler())
	net.Run(dur)
	p.Stop()
	e.windows.Inc()
	e.samples.Add(uint64(len(captured)))
	return &CellRun{
		Cell:     c,
		Net:      net,
		Samples:  captured,
		MissRate: p.MissRate(),
		CPUBusy:  p.CPUBusyFrac(),
		Faults:   schedule,
	}, nil
}

// cellFaults derives the fault schedule for one cell. A fixed
// Config.FaultSchedule applies verbatim to every cell; a Config.Faults
// generator draws each cell's schedule from its own seed stream, disjoint
// from the poll-jitter stream, so faulted campaigns stay reproducible.
func (e *Experiment) cellFaults(c Cell, dur simclock.Duration) fault.Schedule {
	switch {
	case e.cfg.FaultSchedule != nil:
		return *e.cfg.FaultSchedule
	case e.cfg.Faults != nil:
		src := rng.New(e.cfg.Seed).Split(fmt.Sprintf("fault/%s/r%d/w%d", c.App, c.RackID, c.Window))
		return fault.Generate(src, *e.cfg.Faults, dur)
	}
	return fault.Schedule{}
}

// pollSource derives the poller's jitter stream for one cell. Including
// the interval keeps cells that differ only in sampling rate (Table 1, the
// interval sweep) on distinct streams.
func (e *Experiment) pollSource(c Cell, interval simclock.Duration) *rng.Source {
	return rng.New(e.cfg.Seed).Split(fmt.Sprintf("poll/%s/r%d/w%d/%d", c.App, c.RackID, c.Window, int64(interval)))
}

// campaignCells builds the standard rack-major campaign grid — for each
// app, every (rack, window) pair in order — the one cell layout every
// figure and recording campaign shares.
func (e *Experiment) campaignCells(apps []workload.App, plan CounterPlan, interval, dur simclock.Duration) []Cell {
	cells := make([]Cell, 0, len(apps)*e.cfg.Racks*e.cfg.Windows)
	for _, app := range apps {
		for rack := 0; rack < e.cfg.Racks; rack++ {
			for w := 0; w < e.cfg.Windows; w++ {
				cells = append(cells, Cell{
					App: app, RackID: rack, Window: w,
					Plan: plan, Interval: interval, Duration: dur,
				})
			}
		}
	}
	return cells
}
