package core

import (
	"context"
	"fmt"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/stats"
	"mburst/internal/workload"
)

// Report bundles every reproduced table and figure.
type Report struct {
	Fig1   Fig1Result
	Fig2   Fig2Result
	Table1 Table1Result
	Fig3   Fig3Result
	Fig4   Fig4Result
	Table2 Table2Result
	Fig5   Fig5Result
	Fig6   Fig6Result
	Fig7   Fig7Result
	Fig8   Fig8Result
	Fig9   Fig9Result
	Fig10  Fig10Result
	// Implications is the §7 quantification (extension; not a paper
	// figure, but derived from the same campaigns).
	Implications ImplicationsResult
}

// RunAll produces the full report. The streaming byte reductions feeding
// Figs 3, 4, 6 and Table 2 are executed once per app with every
// statistic enabled and shared, mirroring the paper's single-counter
// campaign reuse.
func (e *Experiment) RunAll(ctx context.Context) (*Report, error) {
	var r Report
	var err error

	r.Fig3 = Fig3Result{Durations: make(AppECDF)}
	r.Fig4 = Fig4Result{Gaps: make(AppECDF), KS: make(map[workload.App]stats.KSResult)}
	r.Table2 = Table2Result{Models: make(map[workload.App]stats.MarkovModel)}
	r.Fig6 = Fig6Result{Utils: make(AppECDF), HotFrac: make(map[workload.App]float64)}
	for _, app := range workload.Apps {
		st, err := e.StreamByteStats(ctx, app, 0,
			ByteWant{Durations: true, Gaps: true, Utils: true, Markov: true})
		if err != nil {
			return nil, fmt.Errorf("byte campaign %v: %w", app, err)
		}
		r.Fig3.Durations[app] = stats.NewECDF(st.Durations)
		r.Fig4.Gaps[app] = stats.NewECDF(st.Gaps)
		r.Fig4.KS[app] = analysis.PoissonTest(st.Gaps)
		r.Table2.Models[app] = st.Markov
		r.Fig6.Utils[app] = stats.NewECDF(st.Utils)
		if len(st.Utils) > 0 {
			r.Fig6.HotFrac[app] = float64(st.HotSamples) / float64(len(st.Utils))
		}
	}

	if r.Fig1, err = e.Fig1DropUtilScatter(ctx); err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	if r.Fig2, err = e.Fig2DropTimeSeries(ctx); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	if r.Table1, err = e.Table1SamplingLoss(ctx); err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	if r.Fig5, err = e.Fig5PacketSizes(ctx); err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	if r.Fig7, err = e.Fig7UplinkMAD(ctx); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	if r.Fig8, err = e.Fig8ServerCorrelation(ctx); err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	if r.Fig9, err = e.Fig9HotPortShare(ctx); err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	if r.Fig10, err = e.Fig10BufferOccupancy(ctx); err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	if r.Implications, err = e.Implications(ctx); err != nil {
		return nil, fmt.Errorf("implications: %w", err)
	}
	return &r, nil
}

// Format renders the whole report in paper order.
func (r *Report) Format() string {
	sections := []string{
		r.Fig1.Format(),
		r.Fig2.Format(),
		r.Table1.Format(),
		r.Fig3.Format(),
		r.Table2.Format(),
		r.Fig4.Format(),
		r.Fig5.Format(),
		r.Fig6.Format(),
		r.Fig7.Format(),
		r.Fig8.Format(),
		r.Fig9.Format(),
		r.Fig10.Format(),
		r.Implications.Format(),
	}
	return strings.Join(sections, "\n\n")
}
