package core

import (
	"context"
	"fmt"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/detect"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/workload"
)

// ImplicationsResult quantifies the §7 design implications on the
// reproduced traffic:
//
//   - Congestion control: the fraction of µbursts already over before a
//     congestion signal delayed by RTT/2 could reach the sender, for a
//     range of data-center RTTs.
//   - Load balancing: the fraction of inter-burst gaps long enough to
//     re-path a flow without reordering (gap > one-way latency), which is
//     the premise of flowlet switching.
//   - Detection: how fast an online detector learns a burst started, and
//     how much lag a smoothed (EWMA) estimator adds.
type ImplicationsResult struct {
	// SignalRTTs are the evaluated round-trip times.
	SignalRTTs []simclock.Duration
	// OverBeforeSignal[app][i] is the fraction of app's bursts shorter
	// than SignalRTTs[i]/2.
	OverBeforeSignal map[workload.App][]float64
	// RepathableGaps[app] is the fraction of inter-burst gaps exceeding
	// the one-way latency (taken as SignalRTTs[mid]/2).
	RepathableGaps map[workload.App]float64
	// ThresholdEval / EWMAEval evaluate online detectors against ground
	// truth on the web campaign.
	ThresholdEval detect.Evaluation
	EWMAEval      detect.Evaluation
}

// Implications runs the §7 analyses, reducing each byte-campaign cell in
// a single streaming pass: one UtilState per cell feeds a shared
// BurstSegmenter (ground truth) and, for the web detector evaluation,
// the online detectors point by point — exactly the window-by-window
// batch reduction the equivalence tests retain as oracle.
func (e *Experiment) Implications(ctx context.Context) (ImplicationsResult, error) {
	res := ImplicationsResult{
		SignalRTTs: []simclock.Duration{
			50 * simclock.Microsecond,
			100 * simclock.Microsecond,
			250 * simclock.Microsecond,
		},
		OverBeforeSignal: make(map[workload.App][]float64),
		RepathableGaps:   make(map[workload.App]float64),
	}
	th := e.threshold()
	type cellImpl struct {
		durations, gaps    []float64
		bursts             []analysis.Burst
		thEvents, ewEvents []detect.Event
	}
	for _, app := range workload.Apps {
		// Detectors are evaluated on the web campaign only (§7.3).
		wantDetect := app == workload.Web
		cells := e.campaignCells([]workload.App{app}, e.RandomPortCounters(app), ByteCampaignInterval, 0)
		wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (cellImpl, error) {
			port := e.randomPort(app, run.Cell.RackID, run.Cell.Window)
			u := analysis.NewUtilState(run.Net.Switch().Port(port).Speed())
			seg := analysis.NewBurstSegmenter(analysis.SegmenterConfig{HotAbove: th})
			var ci cellImpl
			var thDet, ewDet detect.Detector
			if wantDetect {
				td, err := detect.NewThresholdDetector(th, 1, 1)
				if err != nil {
					return cellImpl{}, err
				}
				ed, err := detect.NewEWMADetector(0.3, th, th*0.6)
				if err != nil {
					return cellImpl{}, err
				}
				thDet, ewDet = td, ed
			}
			closeBurst := func(b analysis.Burst) {
				ci.bursts = append(ci.bursts, b)
				ci.durations = append(ci.durations, float64(b.Duration())/float64(simclock.Microsecond))
			}
			for _, s := range run.Samples {
				p, ok, err := u.Feed(s)
				if err != nil {
					return cellImpl{}, err
				}
				if !ok {
					continue
				}
				if tr, fired := seg.Feed(p); fired {
					switch tr.Kind {
					case analysis.SegOpen:
						if tr.HasGap {
							ci.gaps = append(ci.gaps, float64(tr.Gap)/float64(simclock.Microsecond))
						}
					case analysis.SegClose:
						closeBurst(tr.Burst)
					}
				}
				if wantDetect {
					ci.thEvents = append(ci.thEvents, thDet.Feed(p)...)
					ci.ewEvents = append(ci.ewEvents, ewDet.Feed(p)...)
				}
			}
			if err := u.Close(); err != nil {
				return cellImpl{}, err
			}
			if tr, fired := seg.Flush(); fired {
				closeBurst(tr.Burst)
			}
			return ci, nil
		})
		if err != nil {
			return res, err
		}

		var durs, gaps []float64
		var allBursts []analysis.Burst
		var thEvents, ewEvents []detect.Event
		for _, w := range wins {
			durs = append(durs, w.durations...)
			gaps = append(gaps, w.gaps...)
			allBursts = append(allBursts, w.bursts...)
			thEvents = append(thEvents, w.thEvents...)
			ewEvents = append(ewEvents, w.ewEvents...)
		}
		fracs := make([]float64, len(res.SignalRTTs))
		for i, rtt := range res.SignalRTTs {
			fracs[i] = detect.FractionOverBeforeSignal(durs, rtt/2)
		}
		res.OverBeforeSignal[app] = fracs

		oneWay := float64(res.SignalRTTs[len(res.SignalRTTs)/2]/2) / float64(simclock.Microsecond)
		long := 0
		for _, g := range gaps {
			if g > oneWay {
				long++
			}
		}
		if len(gaps) > 0 {
			res.RepathableGaps[app] = float64(long) / float64(len(gaps))
		}

		if wantDetect {
			slack := 4 * ByteCampaignInterval
			res.ThresholdEval = detect.Evaluate(allBursts, thEvents, slack)
			res.EWMAEval = detect.Evaluate(allBursts, ewEvents, slack)
		}
	}
	return res, nil
}

// Format renders the §7 summary.
func (r ImplicationsResult) Format() string {
	var b strings.Builder
	b.WriteString("§7 implications (measured on the reproduced traffic)\n")
	b.WriteString("  congestion control: fraction of bursts over before an RTT/2 signal arrives\n")
	for _, app := range workload.Apps {
		fracs, ok := r.OverBeforeSignal[app]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "    %-7s", app)
		for i, rtt := range r.SignalRTTs {
			fmt.Fprintf(&b, "  RTT=%v: %4.0f%%", rtt, fracs[i]*100)
		}
		b.WriteString("\n")
	}
	b.WriteString("  load balancing: fraction of inter-burst gaps exceeding one-way latency (flowlet-safe)\n")
	for _, app := range workload.Apps {
		if f, ok := r.RepathableGaps[app]; ok {
			fmt.Fprintf(&b, "    %-7s %4.0f%%\n", app, f*100)
		}
	}
	thLat := stats.NewECDF(r.ThresholdEval.LatenciesMicros)
	ewLat := stats.NewECDF(r.EWMAEval.LatenciesMicros)
	fmt.Fprintf(&b, "  online detection (web): threshold detector rate=%.0f%% p50 latency=%vµs; EWMA rate=%.0f%% p50 latency=%vµs\n",
		r.ThresholdEval.DetectionRate()*100, fmtQuantile(thLat, 0.5),
		r.EWMAEval.DetectionRate()*100, fmtQuantile(ewLat, 0.5))
	return strings.TrimRight(b.String(), "\n")
}

func fmtQuantile(e *stats.ECDF, q float64) string {
	if e.N() == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", e.Quantile(q))
}
