package core

import (
	"context"
	"fmt"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/detect"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/workload"
)

// ImplicationsResult quantifies the §7 design implications on the
// reproduced traffic:
//
//   - Congestion control: the fraction of µbursts already over before a
//     congestion signal delayed by RTT/2 could reach the sender, for a
//     range of data-center RTTs.
//   - Load balancing: the fraction of inter-burst gaps long enough to
//     re-path a flow without reordering (gap > one-way latency), which is
//     the premise of flowlet switching.
//   - Detection: how fast an online detector learns a burst started, and
//     how much lag a smoothed (EWMA) estimator adds.
type ImplicationsResult struct {
	// SignalRTTs are the evaluated round-trip times.
	SignalRTTs []simclock.Duration
	// OverBeforeSignal[app][i] is the fraction of app's bursts shorter
	// than SignalRTTs[i]/2.
	OverBeforeSignal map[workload.App][]float64
	// RepathableGaps[app] is the fraction of inter-burst gaps exceeding
	// the one-way latency (taken as SignalRTTs[mid]/2).
	RepathableGaps map[workload.App]float64
	// ThresholdEval / EWMAEval evaluate online detectors against ground
	// truth on the web campaign.
	ThresholdEval detect.Evaluation
	EWMAEval      detect.Evaluation
}

// Implications runs the §7 analyses over fresh byte campaigns.
func (e *Experiment) Implications(ctx context.Context) (ImplicationsResult, error) {
	res := ImplicationsResult{
		SignalRTTs: []simclock.Duration{
			50 * simclock.Microsecond,
			100 * simclock.Microsecond,
			250 * simclock.Microsecond,
		},
		OverBeforeSignal: make(map[workload.App][]float64),
		RepathableGaps:   make(map[workload.App]float64),
	}
	th := e.threshold()
	for _, app := range workload.Apps {
		c, err := e.RunByteCampaign(ctx, app, 0)
		if err != nil {
			return res, err
		}
		durs := c.BurstDurationsMicros(th)
		fracs := make([]float64, len(res.SignalRTTs))
		for i, rtt := range res.SignalRTTs {
			fracs[i] = detect.FractionOverBeforeSignal(durs, rtt/2)
		}
		res.OverBeforeSignal[app] = fracs

		gaps := c.InterBurstGapsMicros(th)
		oneWay := float64(res.SignalRTTs[len(res.SignalRTTs)/2]/2) / float64(simclock.Microsecond)
		long := 0
		for _, g := range gaps {
			if g > oneWay {
				long++
			}
		}
		if len(gaps) > 0 {
			res.RepathableGaps[app] = float64(long) / float64(len(gaps))
		}

		if app == workload.Web {
			var allBursts []analysis.Burst
			var thEvents, ewEvents []detect.Event
			thDet, err := detect.NewThresholdDetector(th, 1, 1)
			if err != nil {
				return res, err
			}
			ewDet, err := detect.NewEWMADetector(0.3, th, th*0.6)
			if err != nil {
				return res, err
			}
			for _, s := range c.WindowSeries {
				allBursts = append(allBursts, analysis.Bursts(s, th)...)
				thDet.Reset()
				ewDet.Reset()
				thEvents = append(thEvents, detect.Run(thDet, s)...)
				ewEvents = append(ewEvents, detect.Run(ewDet, s)...)
			}
			slack := 4 * ByteCampaignInterval
			res.ThresholdEval = detect.Evaluate(allBursts, thEvents, slack)
			res.EWMAEval = detect.Evaluate(allBursts, ewEvents, slack)
		}
	}
	return res, nil
}

// Format renders the §7 summary.
func (r ImplicationsResult) Format() string {
	var b strings.Builder
	b.WriteString("§7 implications (measured on the reproduced traffic)\n")
	b.WriteString("  congestion control: fraction of bursts over before an RTT/2 signal arrives\n")
	for _, app := range workload.Apps {
		fracs, ok := r.OverBeforeSignal[app]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "    %-7s", app)
		for i, rtt := range r.SignalRTTs {
			fmt.Fprintf(&b, "  RTT=%v: %4.0f%%", rtt, fracs[i]*100)
		}
		b.WriteString("\n")
	}
	b.WriteString("  load balancing: fraction of inter-burst gaps exceeding one-way latency (flowlet-safe)\n")
	for _, app := range workload.Apps {
		if f, ok := r.RepathableGaps[app]; ok {
			fmt.Fprintf(&b, "    %-7s %4.0f%%\n", app, f*100)
		}
	}
	thLat := stats.NewECDF(r.ThresholdEval.LatenciesMicros)
	ewLat := stats.NewECDF(r.EWMAEval.LatenciesMicros)
	fmt.Fprintf(&b, "  online detection (web): threshold detector rate=%.0f%% p50 latency=%vµs; EWMA rate=%.0f%% p50 latency=%vµs\n",
		r.ThresholdEval.DetectionRate()*100, fmtQuantile(thLat, 0.5),
		r.EWMAEval.DetectionRate()*100, fmtQuantile(ewLat, 0.5))
	return strings.TrimRight(b.String(), "\n")
}

func fmtQuantile(e *stats.ECDF, q float64) string {
	if e.N() == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", e.Quantile(q))
}
