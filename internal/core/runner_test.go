package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mburst/internal/obs"
	"mburst/internal/simclock"
	"mburst/internal/workload"
)

// runnerConfig is a small but multi-cell campaign: 2 racks × 2 windows.
func runnerConfig(workers int) Config {
	cfg := QuickConfig()
	cfg.Racks = 2
	cfg.Windows = 2
	cfg.WindowDur = 40 * simclock.Millisecond
	cfg.Warmup = 5 * simclock.Millisecond
	cfg.Workers = workers
	return cfg
}

// hashDir fingerprints every file in a directory by name and content.
func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

// TestRunnerRecordDeterminism is the runner's core guarantee: the recorded
// trace directory is byte-identical whether cells run serially or on eight
// workers.
func TestRunnerRecordDeterminism(t *testing.T) {
	record := func(workers int) map[string]string {
		exp, err := NewExperiment(runnerConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("w%d", workers))
		err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "determinism",
			exp.RandomPortCounters(workload.Cache))
		if err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	serial := record(1)
	parallel := record(8)
	if len(serial) != len(parallel) {
		t.Fatalf("file sets differ: serial %d files, parallel %d", len(serial), len(parallel))
	}
	var names []string
	for name := range serial {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if serial[name] != parallel[name] {
			t.Errorf("%s differs between Workers=1 and Workers=8", name)
		}
	}
}

// TestRunnerFigureDeterminism asserts Fig 3 and Fig 9 render identically
// for every worker count.
func TestRunnerFigureDeterminism(t *testing.T) {
	render := func(workers int) (string, string) {
		exp, err := NewExperiment(runnerConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		fig3, err := exp.Fig3BurstDurations(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		fig9, err := exp.Fig9HotPortShare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return fig3.Format(), fig9.Format()
	}
	f3a, f9a := render(1)
	f3b, f9b := render(8)
	if f3a != f3b {
		t.Errorf("Fig3 differs by worker count:\n--- Workers=1\n%s\n--- Workers=8\n%s", f3a, f3b)
	}
	if f9a != f9b {
		t.Errorf("Fig9 differs by worker count:\n--- Workers=1\n%s\n--- Workers=8\n%s", f9a, f9b)
	}
}

// TestRunnerCancelDiscardsTrace: a canceled recording must leave no partial
// campaign behind.
func TestRunnerCancelDiscardsTrace(t *testing.T) {
	exp, err := NewExperiment(runnerConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: no cell should complete
	dir := filepath.Join(t.TempDir(), "canceled")
	err = exp.RecordCampaign(ctx, workload.Web, dir, 0, "", exp.RandomPortCounters(workload.Web))
	if err == nil {
		t.Fatal("RecordCampaign succeeded under a canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		entries, _ := os.ReadDir(dir)
		t.Fatalf("partial trace left behind: %d entries in %s", len(entries), dir)
	}
}

// TestRunnerErrorNamesCell: a failing cell surfaces its coordinates.
func TestRunnerErrorNamesCell(t *testing.T) {
	exp, err := NewExperiment(runnerConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cells := exp.campaignCells([]workload.App{workload.Web}, exp.RandomPortCounters(workload.Web), 0, 0)
	boom := errors.New("boom")
	_, err = RunCells(context.Background(), exp.Runner(), cells, func(run *CellRun) (int, error) {
		if run.Cell.RackID == 1 && run.Cell.Window == 1 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "web/r1/w1") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// TestRunnerNilPlan: cells without a counter plan fail, not panic.
func TestRunnerNilPlan(t *testing.T) {
	exp, err := NewExperiment(runnerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCells(context.Background(), exp.Runner(), []Cell{{App: workload.Web}},
		func(run *CellRun) (int, error) { return 0, nil })
	if err == nil {
		t.Fatal("nil plan accepted")
	}
}

// TestRunnerTelemetry: the completed-cells counter tracks the grid size
// and the in-flight gauge returns to zero.
func TestRunnerTelemetry(t *testing.T) {
	cfg := runnerConfig(4)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.RunByteCampaign(context.Background(), workload.Web, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := exp.cellsCompleted.Value(), uint64(cfg.Racks*cfg.Windows); got != want {
		t.Errorf("cells completed = %d, want %d", got, want)
	}
	if v := exp.cellsInFlight.Value(); v != 0 {
		t.Errorf("cells in flight after campaign = %v, want 0", v)
	}
}
