package core

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"mburst/internal/analysis"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/workload"
)

// recordStreamBenchTrace records the reference large-window campaign the
// memory comparison analyzes: one rack, four 400 ms windows, every port's
// byte counter at the 25 µs campaign interval — tens of thousands of
// samples per window, so the batch path's whole-window materialization
// dominates its footprint.
func recordStreamBenchTrace(tb testing.TB, dir string) {
	tb.Helper()
	cfg := QuickConfig()
	cfg.Servers = 8
	cfg.Windows = 4
	cfg.WindowDur = 400 * simclock.Millisecond
	exp, err := NewExperiment(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	err = exp.RecordCampaign(context.Background(), workload.Hadoop, dir,
		ByteCampaignInterval, "stream memory benchmark", AllPortCounters(false))
	if err != nil {
		tb.Fatal(err)
	}
}

// measureAnalyze runs AnalyzeTrace in the given mode and reports its peak
// live-heap delta (sampled against a post-GC baseline) and its allocation
// footprint (TotalAlloc/Mallocs deltas). GC is tightened for the duration
// so transient garbage does not mask the difference between materializing
// whole windows and holding O(active series) state.
func measureAnalyze(tb testing.TB, dir, kind string, stream bool) (peak, allocBytes, mallocs uint64) {
	tb.Helper()
	r, err := trace.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	prevGC := debug.SetGCPercent(20)
	defer debug.SetGCPercent(prevGC)

	var peakHeap atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap.Load() {
				peakHeap.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	res, err := AnalyzeTrace(r, kind, analysis.DefaultHotThreshold, stream)
	close(stop)
	<-done
	if err != nil {
		tb.Fatal(err)
	}
	runtime.KeepAlive(res)

	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	peak = peakHeap.Load()
	if peak > base.HeapAlloc {
		peak -= base.HeapAlloc
	} else {
		peak = 0
	}
	return peak, end.TotalAlloc - base.TotalAlloc, end.Mallocs - base.Mallocs
}

// TestStreamingMemoryArtifact compares the batch and streaming analysis
// engines on the reference campaign and publishes BENCH_stream.json.
// Gated on MBURST_STREAM_BENCH_OUT so the measurement only runs in the
// dedicated CI step (it is meaningless under the race detector). The
// peak-memory ratio is a hard gate: streaming must hold at least 5x less
// than the batch path's whole-window materialization.
func TestStreamingMemoryArtifact(t *testing.T) {
	out := os.Getenv("MBURST_STREAM_BENCH_OUT")
	if out == "" {
		t.Skip("MBURST_STREAM_BENCH_OUT not set")
	}
	dir := t.TempDir()
	recordStreamBenchTrace(t, dir)

	const kind = "bursts"
	peakBatch, allocBatch, mallocsBatch := measureAnalyze(t, dir, kind, false)
	peakStream, allocStream, mallocsStream := measureAnalyze(t, dir, kind, true)

	// Both engines must still agree before their footprints are compared.
	r, err := trace.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resBatch, err := AnalyzeTrace(r, kind, analysis.DefaultHotThreshold, false)
	if err != nil {
		t.Fatal(err)
	}
	resStream, err := AnalyzeTrace(r, kind, analysis.DefaultHotThreshold, true)
	if err != nil {
		t.Fatal(err)
	}
	assertStreamEqual(t, "bench trace", resBatch, resStream)

	peakRatio := float64(peakBatch) / float64(peakStream)
	allocRatio := float64(allocBatch) / float64(allocStream)
	artifact := struct {
		Name          string  `json:"name"`
		Kind          string  `json:"kind"`
		Windows       int     `json:"windows"`
		CPUs          int     `json:"cpus"`
		PeakBatchB    uint64  `json:"peak_batch_bytes"`
		PeakStreamB   uint64  `json:"peak_stream_bytes"`
		PeakRatio     float64 `json:"peak_ratio"`
		AllocBatchB   uint64  `json:"alloc_batch_bytes"`
		AllocStreamB  uint64  `json:"alloc_stream_bytes"`
		AllocRatio    float64 `json:"alloc_ratio"`
		MallocsBatch  uint64  `json:"mallocs_batch"`
		MallocsStream uint64  `json:"mallocs_stream"`
	}{
		Name:          "stream_memory",
		Kind:          kind,
		Windows:       resBatch.Windows,
		CPUs:          runtime.NumCPU(),
		PeakBatchB:    peakBatch,
		PeakStreamB:   peakStream,
		PeakRatio:     peakRatio,
		AllocBatchB:   allocBatch,
		AllocStreamB:  allocStream,
		AllocRatio:    allocRatio,
		MallocsBatch:  mallocsBatch,
		MallocsStream: mallocsStream,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("peak: batch %d B, stream %d B (%.1fx); allocs: batch %d B, stream %d B (%.1fx)",
		peakBatch, peakStream, peakRatio, allocBatch, allocStream, allocRatio)

	if peakRatio < 5 {
		t.Errorf("streaming peak memory only %.1fx below batch, want >= 5x (batch %d B, stream %d B)",
			peakRatio, peakBatch, peakStream)
	}
	if allocRatio < 5 {
		t.Errorf("streaming allocation footprint only %.1fx below batch, want >= 5x (batch %d B, stream %d B)",
			allocRatio, allocBatch, allocStream)
	}
}

// BenchmarkStreamingMemory reports the wall-clock and allocation profile
// of both engines on the reference campaign. Run with:
//
//	go test -run=^$ -bench=BenchmarkStreamingMemory -benchtime=1x ./internal/core
func BenchmarkStreamingMemory(b *testing.B) {
	for _, bc := range []struct {
		name   string
		stream bool
	}{
		{"batch", false},
		{"stream", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			recordStreamBenchTrace(b, dir)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := trace.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := AnalyzeTrace(r, "bursts", analysis.DefaultHotThreshold, bc.stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
