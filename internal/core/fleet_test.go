package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"mburst/internal/fault"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// fleetTestConfig is a small-but-real fleet: enough racks to spread
// over several shards, short windows so the suite stays fast.
func fleetTestConfig(racks int) Config {
	return Config{
		Racks:     racks,
		Windows:   1,
		WindowDur: 2 * simclock.Millisecond,
		Warmup:    500 * simclock.Microsecond,
		Servers:   8,
		Seed:      7,
	}
}

func TestFleetMatchesOracleAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		e, err := NewExperiment(fleetTestConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunFleet(context.Background(), FleetConfig{
			App:           workload.Web,
			Shards:        shards,
			PlacementSeed: 42,
			BatchSize:     16,
			PublishEvery:  4,
			Oracle:        true,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.ByteExact {
			t.Errorf("shards=%d: fleet state diverges from the single-collector oracle", shards)
		}
		if res.Fleet.Reporting != shards {
			t.Errorf("shards=%d: %d reporting", shards, res.Fleet.Reporting)
		}
		if res.Batches == 0 || res.Samples == 0 || res.WireBytes == 0 {
			t.Errorf("shards=%d: empty campaign: %+v", shards, res)
		}
		if res.Samples != res.Fleet.Ingest.Samples {
			t.Errorf("shards=%d: delivered %d samples, fleet ingested %d",
				shards, res.Samples, res.Fleet.Ingest.Samples)
		}
	}
}

func TestFleetWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *FleetResult {
		cfg := fleetTestConfig(6)
		cfg.Workers = workers
		e, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunFleet(context.Background(), FleetConfig{
			App: workload.Cache, Shards: 3, PlacementSeed: 1, BatchSize: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if serial.Fleet.Figures.Samples == 0 {
		t.Fatal("empty fleet figures")
	}
	if !reflect.DeepEqual(serial.Fleet.Figures, parallel.Fleet.Figures) ||
		!reflect.DeepEqual(serial.Fleet.Ingest, parallel.Fleet.Ingest) ||
		!reflect.DeepEqual(serial.Figures, parallel.Figures) {
		t.Error("worker counts 1 vs 4: fleet states diverge")
	}
	if serial.WireBytes != parallel.WireBytes || serial.Batches != parallel.Batches {
		t.Errorf("worker counts 1 vs 4: totals diverge: %d/%d bytes, %d/%d batches",
			serial.WireBytes, parallel.WireBytes, serial.Batches, parallel.Batches)
	}
}

func TestFleetDurableFaultsByteExact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fleet")
	sched, err := fault.ParseSchedule("kill@0.5ms,torn@1ms:x0.5,shortw@1.5ms")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExperiment(fleetTestConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFleet(context.Background(), FleetConfig{
		App:             workload.Hadoop,
		Shards:          3,
		PlacementSeed:   9,
		BatchSize:       8,
		PublishEvery:    4,
		Dir:             dir,
		CheckpointEvery: 4,
		Oracle:          true,
		Faults:          sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 3 || res.Resumes != 3 {
		t.Errorf("kills=%d resumes=%d, want 3 each (%s)", res.Kills, res.Resumes, sched)
	}
	if !res.ByteExact {
		t.Error("crash schedule broke fleet/oracle byte-exactness")
	}

	// The fleet directory round-trips: manifest, placement-stamped
	// campaign meta, fleet checkpoint, and the merged archive stream
	// accounts for every admitted batch (vouched short-write lies
	// excepted, batch-for-batch, as Shortfall).
	man, ok, err := trace.ReadFleetManifest(dir)
	if err != nil || !ok {
		t.Fatalf("fleet manifest: ok=%v err=%v", ok, err)
	}
	if !man.Placement.Equal(res.Placement) {
		t.Error("manifest placement diverges from the campaign's")
	}
	r, err := trace.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta().Placement == nil || !r.Meta().Placement.Equal(res.Placement) {
		t.Error("campaign.json placement missing or diverging")
	}
	var archived uint64
	if err := trace.IterFleet(dir, func(b *wire.Batch) error {
		archived++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Redelivered overlap is deduped by the gates, so the archives hold
	// each admitted batch exactly once, minus vouched short-write lies.
	if archived+res.Shortfall != res.Batches {
		t.Errorf("archives hold %d batches + %d shortfall, fleet admitted %d",
			archived, res.Shortfall, res.Batches)
	}
}

func TestFleetFaultsRequireDir(t *testing.T) {
	e, err := NewExperiment(fleetTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.ParseSchedule("kill@1ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunFleet(context.Background(), FleetConfig{
		App: workload.Web, Shards: 1, Faults: sched,
	}); err == nil {
		t.Fatal("volatile fleet accepted a fault schedule")
	}
}
