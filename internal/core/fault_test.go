package core

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mburst/internal/fault"
	"mburst/internal/simclock"
	"mburst/internal/workload"
)

// stuckSchedule is a fixed schedule guaranteed to bite inside the 40 ms
// runnerConfig windows.
func stuckSchedule() fault.Schedule {
	s, err := fault.ParseSchedule("stuck@5ms+10ms,stall@20ms+10ms:200µs")
	if err != nil {
		panic(err)
	}
	return s
}

// TestFaultedCampaignDeterminism extends the runner's byte-identity
// guarantee to chaos campaigns: with per-cell generated fault schedules the
// recorded directory must still be identical for every worker count.
func TestFaultedCampaignDeterminism(t *testing.T) {
	record := func(workers int) map[string]string {
		cfg := runnerConfig(workers)
		gen := fault.Default()
		cfg.Faults = &gen
		exp, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "c")
		err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "chaos",
			exp.RandomPortCounters(workload.Cache))
		if err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	serial := record(1)
	parallel := record(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("faulted campaign differs by worker count:\nserial   %v\nparallel %v", serial, parallel)
	}
}

// TestFaultedCampaignDiffersFromClean: a guaranteed-active schedule must
// actually perturb the recorded samples — otherwise injection is a no-op.
func TestFaultedCampaignDiffersFromClean(t *testing.T) {
	record := func(sched *fault.Schedule) map[string]string {
		cfg := runnerConfig(2)
		cfg.FaultSchedule = sched
		exp, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "c")
		err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "",
			exp.RandomPortCounters(workload.Cache))
		if err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	sched := stuckSchedule()
	faulted := record(&sched)
	clean := record(nil)
	if reflect.DeepEqual(faulted, clean) {
		t.Error("fault schedule left the trace untouched")
	}
	// And the zero-fault path is byte-identical to no fault plumbing at
	// all — the soak's identity invariant at campaign scale.
	empty := fault.Schedule{}
	if got := record(&empty); !reflect.DeepEqual(got, clean) {
		t.Error("empty fault schedule changed the trace")
	}
}

// TestCellRunCarriesSchedule: the executed cells report the schedule that
// was injected into them.
func TestCellRunCarriesSchedule(t *testing.T) {
	cfg := runnerConfig(1)
	sched := stuckSchedule()
	cfg.FaultSchedule = &sched
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := exp.campaignCells([]workload.App{workload.Web}, exp.RandomPortCounters(workload.Web), 0, 0)
	runs, err := RunCells(context.Background(), exp.Runner(), cells, func(run *CellRun) (string, error) {
		return run.Faults.String(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range runs {
		if got != sched.String() {
			t.Errorf("cell %d schedule = %q, want %q", i, got, sched.String())
		}
	}
}

// TestCellFaultsGenerated: generated schedules differ across cells (each
// cell has its own stream) yet reproduce exactly across experiments.
func TestCellFaultsGenerated(t *testing.T) {
	cfg := runnerConfig(1)
	gen := fault.Default()
	cfg.Faults = &gen
	schedules := func() []string {
		exp, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for rack := 0; rack < 4; rack++ {
			for w := 0; w < 4; w++ {
				c := Cell{App: workload.Web, RackID: rack, Window: w}
				out = append(out, exp.cellFaults(c, 100*simclock.Millisecond).String())
			}
		}
		return out
	}
	a, b := schedules(), schedules()
	if !reflect.DeepEqual(a, b) {
		t.Error("generated schedules not reproducible")
	}
	distinct := make(map[string]bool)
	for _, s := range a {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d cells drew identical schedules: %q", len(a), a[0])
	}
}

func TestConfigValidateFaults(t *testing.T) {
	cfg := QuickConfig()
	gen := fault.Default()
	sched := stuckSchedule()
	cfg.Faults, cfg.FaultSchedule = &gen, &sched
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both fault modes accepted: %v", err)
	}
	cfg = QuickConfig()
	bad := fault.Default()
	bad.PStuck = 2
	cfg.Faults = &bad
	if err := cfg.Validate(); err == nil {
		t.Error("invalid GenConfig accepted")
	}
	cfg = QuickConfig()
	badSched := fault.Schedule{Faults: []fault.Fault{{Kind: fault.KindStuckReads, At: -1}}}
	cfg.FaultSchedule = &badSched
	if err := cfg.Validate(); err == nil {
		t.Error("invalid FaultSchedule accepted")
	}
}
