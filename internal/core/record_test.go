package core

import (
	"context"
	"path/filepath"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/workload"
)

func TestRecordCampaignRoundTrip(t *testing.T) {
	cfg := QuickConfig()
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cache")
	err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "test", exp.RandomPortCounters(workload.Cache))
	if err != nil {
		t.Fatal(err)
	}

	r, err := trace.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Meta()
	if meta.App != "cache" {
		t.Errorf("app = %q", meta.App)
	}
	if meta.Windows != cfg.Racks*cfg.Windows {
		t.Errorf("windows = %d", meta.Windows)
	}
	if meta.Interval != ByteCampaignInterval {
		t.Errorf("interval = %v", meta.Interval)
	}
	totalBursts := 0
	for i := 0; i < meta.Windows; i++ {
		samples, err := readWindow(r, i)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if len(samples) < 100 {
			t.Fatalf("window %d has only %d samples", i, len(samples))
		}
		// Single-counter campaign: every sample is a TX byte counter.
		for _, s := range samples {
			if s.Kind != asic.KindBytes || s.Dir != asic.TX {
				t.Fatalf("unexpected sample %+v", s)
			}
		}
		speed := uint64(meta.ServerSpeed)
		if int(samples[0].Port) >= meta.NumServers {
			speed = meta.UplinkSpeed
		}
		series, err := analysis.UtilizationSeries(samples, speed)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		totalBursts += len(analysis.Bursts(series, 0))
	}
	if totalBursts == 0 {
		t.Error("recorded campaign shows no bursts at all")
	}
}

func TestRecordCampaignAllPorts(t *testing.T) {
	cfg := QuickConfig()
	cfg.Windows = 1
	cfg.Racks = 1
	cfg.WindowDur = 50 * simclock.Millisecond
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "hadoop")
	err = exp.RecordCampaign(context.Background(), workload.Hadoop, dir, 300*simclock.Microsecond, "fig10", AllPortCounters(true))
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := readWindow(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[asic.CounterKind]int{}
	ports := map[uint16]bool{}
	for _, s := range samples {
		kinds[s.Kind]++
		if s.Kind == asic.KindBytes {
			ports[s.Port] = true
		}
	}
	if kinds[asic.KindBufferPeak] == 0 {
		t.Error("no buffer peak samples in fig10 plan")
	}
	if want := exp.Rack().NumPorts(); len(ports) != want {
		t.Errorf("byte samples cover %d ports, want %d", len(ports), want)
	}
}

func TestRecordCampaignRefusesOverwrite(t *testing.T) {
	cfg := QuickConfig()
	cfg.Windows = 1
	cfg.WindowDur = 10 * simclock.Millisecond
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "c")
	plan := exp.RandomPortCounters(workload.Web)
	if err := exp.RecordCampaign(context.Background(), workload.Web, dir, 0, "", plan); err != nil {
		t.Fatal(err)
	}
	if err := exp.RecordCampaign(context.Background(), workload.Web, dir, 0, "", plan); err == nil {
		t.Error("second record into same dir succeeded")
	}
}
