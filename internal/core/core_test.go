package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatalf("quick config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Racks = 0 },
		func(c *Config) { c.Windows = -1 },
		func(c *Config) { c.WindowDur = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.HotThreshold = 1.5 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
		if _, err := NewExperiment(cfg); err == nil {
			t.Errorf("mutation %d constructed", i)
		}
	}
}

func TestLoadScaleDiurnal(t *testing.T) {
	cfg := DefaultConfig()
	e, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for w := 0; w < cfg.Windows; w++ {
		s := e.loadScale(w)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo >= 1 || hi <= 1 {
		t.Errorf("diurnal range [%v, %v] should straddle 1", lo, hi)
	}
	cfg.Diurnal = false
	e2, _ := NewExperiment(cfg)
	for w := 0; w < cfg.Windows; w++ {
		if e2.loadScale(w) != 1 {
			t.Error("non-diurnal scale != 1")
		}
	}
}

func TestWindowSeedsDiffer(t *testing.T) {
	e, _ := NewExperiment(QuickConfig())
	seen := map[uint64]bool{}
	for _, app := range workload.Apps {
		for r := 0; r < 2; r++ {
			for w := 0; w < 2; w++ {
				s := e.windowSeed(app, r, w)
				if seen[s] {
					t.Fatalf("duplicate seed for %v/%d/%d", app, r, w)
				}
				seen[s] = true
			}
		}
	}
	// Same coordinates → same seed.
	if e.windowSeed(workload.Web, 0, 0) != e.windowSeed(workload.Web, 0, 0) {
		t.Error("seed not deterministic")
	}
}

// quickExperiment caches the expensive QuickConfig campaigns across tests.
var (
	quickOnce sync.Once
	quickExp  *Experiment
	quickRep  *Report
	quickErr  error
)

func quickReport(t *testing.T) (*Experiment, *Report) {
	t.Helper()
	quickOnce.Do(func() {
		quickExp, quickErr = NewExperiment(QuickConfig())
		if quickErr != nil {
			return
		}
		quickRep, quickErr = quickExp.RunAll(context.Background())
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickExp, quickRep
}

func TestRunAllProducesAllSections(t *testing.T) {
	_, rep := quickReport(t)
	out := rep.Format()
	for _, want := range []string{"Fig 1", "Fig 2", "Table 1", "Fig 3", "Table 2", "Fig 4", "Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9", "Fig 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFormatPlotsRendersEveryFigure(t *testing.T) {
	_, rep := quickReport(t)
	out := rep.FormatPlots()
	for _, want := range []string{
		"Fig 2 —", "Fig 3 —", "Fig 4 —", "Fig 5 —", "Fig 6 —",
		"Fig 7 —", "Fig 8 —", "Fig 9 —", "Fig 10 —",
		"log scale", "web", "cache", "hadoop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plots missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into plot output")
	}
}

func TestFig3Shapes(t *testing.T) {
	_, rep := quickReport(t)
	for _, app := range workload.Apps {
		e := rep.Fig3.Durations[app]
		if e == nil || e.N() == 0 {
			t.Fatalf("%v: no bursts", app)
		}
		// Headline: p90 well under a millisecond for every app.
		if p90 := e.Quantile(0.9); p90 > 1000 {
			t.Errorf("%v p90 burst = %vµs, want < 1000", app, p90)
		}
	}
	// Web bursts are the shortest (paper: web p90 = 50µs = 2 periods).
	// The quick config sees only a few dozen web bursts, so compare
	// medians exactly and p90 with slack for sampling noise; the
	// full-size ordering is checked by the figure harness.
	web, hadoop := rep.Fig3.Durations[workload.Web], rep.Fig3.Durations[workload.Hadoop]
	if web.Quantile(0.5) > hadoop.Quantile(0.5) {
		t.Error("web median burst should be <= hadoop median")
	}
	if web.Quantile(0.9) > 1.5*hadoop.Quantile(0.9) {
		t.Errorf("web p90 (%v) far above hadoop p90 (%v)", web.Quantile(0.9), hadoop.Quantile(0.9))
	}
}

func TestTable2Shapes(t *testing.T) {
	_, rep := quickReport(t)
	for _, app := range workload.Apps {
		m := rep.Table2.Models[app]
		r := m.LikelihoodRatio()
		if !(r > 5) {
			t.Errorf("%v likelihood ratio = %v, want >> 1 (correlated bursts)", app, r)
		}
	}
	// Ordering: web has the highest ratio (rare but sticky bursts).
	rweb := rep.Table2.Models[workload.Web].LikelihoodRatio()
	rhad := rep.Table2.Models[workload.Hadoop].LikelihoodRatio()
	if !(rweb > rhad) {
		t.Errorf("ratio ordering: web %v should exceed hadoop %v", rweb, rhad)
	}
}

func TestFig4Shapes(t *testing.T) {
	_, rep := quickReport(t)
	for _, app := range workload.Apps {
		g := rep.Fig4.Gaps[app]
		if g == nil || g.N() < 10 {
			t.Fatalf("%v: too few gaps (%d)", app, g.N())
		}
		// The tail and KS assertions need statistical power; the quick
		// config's cache windows may sample only quiet downlinks. The
		// full-size assertions live in the figure harness/EXPERIMENTS.md.
		if g.N() < 500 {
			continue
		}
		// Gaps stretch orders of magnitude beyond burst durations.
		if g.Max() < 10*g.Quantile(0.5) {
			t.Errorf("%v gap tail too short: max %v vs median %v", app, g.Max(), g.Quantile(0.5))
		}
		if !rep.Fig4.KS[app].Rejects(0.01) {
			t.Errorf("%v: Poisson hypothesis not rejected (p=%v)", app, rep.Fig4.KS[app].PValue)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	_, rep := quickReport(t)
	for _, app := range workload.Apps {
		mix := rep.Fig5.Mix[app]
		if mix.InsidePeriods == 0 || mix.OutsidePeriods == 0 {
			t.Fatalf("%v: periods inside=%d outside=%d", app, mix.InsidePeriods, mix.OutsidePeriods)
		}
		if shift := mix.LargeShift(); shift <= 0 {
			t.Errorf("%v: large-packet shift = %v, want positive (§5.3)", app, shift)
		}
	}
	// Hadoop is mostly large packets inside AND outside.
	had := rep.Fig5.Mix[workload.Hadoop]
	if had.Outside.Normalized()[5] < 0.5 {
		t.Errorf("hadoop outside MTU share = %v, want majority", had.Outside.Normalized()[5])
	}
	// Web's shift is the largest of the three.
	if rep.Fig5.Mix[workload.Web].LargeShift() <= rep.Fig5.Mix[workload.Hadoop].LargeShift() {
		t.Error("web large-packet shift should exceed hadoop's")
	}
}

func TestFig6Shapes(t *testing.T) {
	_, rep := quickReport(t)
	hot := rep.Fig6.HotFrac
	// Hadoop spends by far the most time hot (§5.4: ~15%). The web/cache
	// ordering needs many random-port windows to stabilize (cache heat
	// lives on its 4 uplinks), so the quick config only asserts hadoop's
	// dominance; the full ordering is validated by the figure harness.
	if !(hot[workload.Hadoop] > hot[workload.Cache] && hot[workload.Hadoop] > hot[workload.Web]) {
		t.Errorf("hot-fraction ordering wrong: %v", hot)
	}
	for _, app := range workload.Apps {
		e := rep.Fig6.Utils[app]
		// Long-tailed: median far below p99.
		if e.Quantile(0.99) < 2*e.Quantile(0.5) {
			t.Errorf("%v utilization not long-tailed: p50=%v p99=%v", app, e.Quantile(0.5), e.Quantile(0.99))
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	_, rep := quickReport(t)
	for _, app := range workload.Apps {
		c := rep.Fig7.MAD[app]
		fineMed := c.EgressFine.Quantile(0.5)
		coarseMed := c.EgressCoarse.Quantile(0.5)
		// Imbalanced at fine granularity, far more balanced when coarse.
		if fineMed < 0.10 {
			t.Errorf("%v fine egress MAD median = %v, want > 0.10", app, fineMed)
		}
		if coarseMed > fineMed {
			t.Errorf("%v coarse MAD median %v should be below fine %v", app, coarseMed, fineMed)
		}
	}
	// Hadoop (few large flows) is the least balanced.
	if rep.Fig7.MAD[workload.Hadoop].EgressFine.Quantile(0.9) < rep.Fig7.MAD[workload.Web].EgressFine.Quantile(0.9) {
		t.Error("hadoop p90 MAD should exceed web p90 MAD")
	}
}

func TestFig8Shapes(t *testing.T) {
	_, rep := quickReport(t)
	// Cache has block structure; web does not.
	if rep.Fig8.BlockScore[workload.Cache] <= 0.05 {
		t.Errorf("cache block score = %v, want clearly positive", rep.Fig8.BlockScore[workload.Cache])
	}
	if rep.Fig8.MeanOffDiag[workload.Web] >= rep.Fig8.MeanOffDiag[workload.Cache] {
		t.Errorf("web mean |r| (%v) should be below cache (%v)",
			rep.Fig8.MeanOffDiag[workload.Web], rep.Fig8.MeanOffDiag[workload.Cache])
	}
	// Matrix shape sanity.
	n := len(rep.Fig8.Corr[workload.Web])
	if n != QuickConfig().Servers {
		t.Errorf("matrix size = %d", n)
	}
}

func TestFig9Shapes(t *testing.T) {
	_, rep := quickReport(t)
	web := rep.Fig9.Share[workload.Web].UplinkShare()
	cache := rep.Fig9.Share[workload.Cache].UplinkShare()
	hadoop := rep.Fig9.Share[workload.Hadoop].UplinkShare()
	if cache < 0.5 {
		t.Errorf("cache uplink share = %v, want majority (§6.3)", cache)
	}
	if web > 0.4 {
		t.Errorf("web uplink share = %v, want server-dominated", web)
	}
	if hadoop > 0.45 {
		t.Errorf("hadoop uplink share = %v, want ~0.18", hadoop)
	}
}

func TestFig10Shapes(t *testing.T) {
	_, rep := quickReport(t)
	// Buffer pressure grows with hot ports for hadoop, and hadoop drives
	// the most ports hot.
	if rep.Fig10.MeanPeakHigh[workload.Hadoop] <= rep.Fig10.MeanPeakLow[workload.Hadoop] {
		t.Errorf("hadoop buffer peak should grow with hot ports: low=%v high=%v",
			rep.Fig10.MeanPeakLow[workload.Hadoop], rep.Fig10.MeanPeakHigh[workload.Hadoop])
	}
	if rep.Fig10.MaxHotFrac[workload.Hadoop] < rep.Fig10.MaxHotFrac[workload.Web] {
		t.Error("hadoop should drive more simultaneous hot ports than web")
	}
}

func TestFig1And2Shapes(t *testing.T) {
	_, rep := quickReport(t)
	if len(rep.Fig1.Points) == 0 {
		t.Fatal("fig1: no points")
	}
	// Weak correlation (paper: 0.098). Allow a broad band, but it must
	// not look strongly coupled.
	if math.Abs(rep.Fig1.Correlation) > 0.5 {
		t.Errorf("fig1 correlation = %v, want weak", rep.Fig1.Correlation)
	}
	// Fig 2: the drop series must be bursty when drops exist at all.
	if rep.Fig2.HighStats.Total > 0 && rep.Fig2.HighStats.ZeroBins < 0.2 {
		t.Errorf("fig2 high-util port drops not bursty: %+v", rep.Fig2.HighStats)
	}
	if rep.Fig2.LowAvg >= rep.Fig2.HighAvg {
		t.Errorf("fig2: low-util port (%v) should be below high-util port (%v)", rep.Fig2.LowAvg, rep.Fig2.HighAvg)
	}
}

func TestTable1Shape(t *testing.T) {
	_, rep := quickReport(t)
	rows := map[simclock.Duration]float64{}
	for _, row := range rep.Table1.Rows {
		rows[row.Interval] = row.MissRate
	}
	if rows[simclock.Micros(1)] < 0.8 {
		t.Errorf("1µs miss rate = %v, want ~100%%", rows[simclock.Micros(1)])
	}
	if r := rows[simclock.Micros(10)]; r < 0.03 || r > 0.25 {
		t.Errorf("10µs miss rate = %v, want ~10%%", r)
	}
	if r := rows[simclock.Micros(25)]; r > 0.05 {
		t.Errorf("25µs miss rate = %v, want ~1%%", r)
	}
}

func TestByteCampaignDeterminism(t *testing.T) {
	e, _ := NewExperiment(QuickConfig())
	a, err := e.RunByteCampaign(context.Background(), workload.Cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunByteCampaign(context.Background(), workload.Cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.WindowSeries) != len(b.WindowSeries) {
		t.Fatal("window counts differ")
	}
	for i := range a.WindowSeries {
		if len(a.WindowSeries[i]) != len(b.WindowSeries[i]) {
			t.Fatalf("window %d lengths differ", i)
		}
		for j := range a.WindowSeries[i] {
			if a.WindowSeries[i][j] != b.WindowSeries[i][j] {
				t.Fatalf("window %d point %d differs", i, j)
			}
		}
	}
}

func TestBalancerAblationConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.Balancer = simnet.BalanceRoundRobin
	e, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Balancer != simnet.BalanceRoundRobin {
		t.Error("balancer not carried")
	}
}
