package core

import (
	"context"
	"strings"
	"testing"

	"mburst/internal/workload"
)

func TestImplications(t *testing.T) {
	exp, err := NewExperiment(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Implications(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range workload.Apps {
		fracs := res.OverBeforeSignal[app]
		if len(fracs) != len(res.SignalRTTs) {
			t.Fatalf("%v: %d fractions for %d RTTs", app, len(fracs), len(res.SignalRTTs))
		}
		// Monotone: a slower signal misses at least as many bursts.
		for i := 1; i < len(fracs); i++ {
			if fracs[i] < fracs[i-1] {
				t.Errorf("%v: fraction not monotone in RTT: %v", app, fracs)
			}
		}
		// The §7 headline: at a 250µs RTT a large share of bursts are
		// unreactable.
		if fracs[len(fracs)-1] < 0.3 {
			t.Errorf("%v: only %.2f of bursts over before 125µs signal; expected a large share", app, fracs[len(fracs)-1])
		}
	}
	// Flowlet premise: most gaps exceed one-way latency (§7: "most
	// observed inter-burst periods exceed typical end-to-end latencies").
	for _, app := range workload.Apps {
		if res.RepathableGaps[app] < 0.5 {
			t.Errorf("%v: repathable gaps = %v, want majority", app, res.RepathableGaps[app])
		}
	}
	// The immediate detector catches most bursts; the EWMA detector adds
	// lag (lower rate or higher latency).
	if res.ThresholdEval.DetectionRate() < 0.9 {
		t.Errorf("threshold detection rate = %v", res.ThresholdEval.DetectionRate())
	}
	if res.EWMAEval.DetectionRate() > res.ThresholdEval.DetectionRate() {
		t.Errorf("EWMA rate %v should not beat the immediate detector %v",
			res.EWMAEval.DetectionRate(), res.ThresholdEval.DetectionRate())
	}
	out := res.Format()
	for _, want := range []string{"congestion control", "load balancing", "online detection"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
