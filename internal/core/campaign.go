package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/fault"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// Experiment runs measurement campaigns under one Config.
type Experiment struct {
	cfg Config

	// Campaign telemetry (nil-safe; see Config.Metrics). All pollers the
	// experiment builds share pollerM, aggregating poll/miss/cost totals
	// across windows.
	pollerM *collector.PollerMetrics
	windows *obs.Counter
	samples *obs.Counter
	// Runner telemetry: cells currently executing and cells completed.
	cellsInFlight  *obs.Gauge
	cellsCompleted *obs.Counter
	// Fault-injection telemetry, shared by every cell's injector.
	faultM *fault.Metrics
}

// NewExperiment validates cfg and returns an Experiment.
func NewExperiment(cfg Config) (*Experiment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Experiment{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		e.pollerM = collector.NewPollerMetrics(reg)
		e.windows = reg.Counter("mburst_campaign_windows_total",
			"Measurement windows recorded across campaigns.")
		e.samples = reg.Counter("mburst_campaign_samples_total",
			"Counter samples captured across campaigns.")
		e.cellsInFlight = reg.Gauge("mburst_runner_cells_in_flight",
			"Campaign cells currently executing on the worker pool.")
		e.cellsCompleted = reg.Counter("mburst_runner_cells_completed_total",
			"Campaign cells completed by the worker pool.")
		if cfg.Faults != nil || cfg.FaultSchedule != nil {
			e.faultM = fault.NewMetrics(reg)
		}
	}
	return e, nil
}

// Config returns the experiment's configuration.
func (e *Experiment) Config() Config { return e.cfg }

// Rack returns the rack topology used throughout the experiment.
func (e *Experiment) Rack() topo.Rack { return topo.Default(e.cfg.Servers) }

// threshold returns the configured hot threshold.
func (e *Experiment) threshold() float64 {
	if e.cfg.HotThreshold > 0 {
		return e.cfg.HotThreshold
	}
	return analysis.DefaultHotThreshold
}

// loadScale returns the diurnal load factor for a window: a day-shaped
// sinusoid between ~0.65 and ~1.35 of nominal load.
func (e *Experiment) loadScale(window int) float64 {
	if !e.cfg.Diurnal || e.cfg.Windows <= 1 {
		return 1
	}
	phase := 2 * math.Pi * float64(window) / float64(e.cfg.Windows)
	return 1 + 0.35*math.Sin(phase)
}

// windowSeed derives the deterministic seed for one (app, rack, window).
func (e *Experiment) windowSeed(app workload.App, rack, window int) uint64 {
	return rng.New(e.cfg.Seed).Split(fmt.Sprintf("%s/r%d/w%d", app, rack, window)).Uint64()
}

// newNet builds the simulated rack for one (app, rack, window).
func (e *Experiment) newNet(app workload.App, rack, window int) (*simnet.Net, error) {
	return simnet.New(simnet.Config{
		Rack:        topo.Default(e.cfg.Servers),
		Params:      e.cfg.params(app),
		Seed:        e.windowSeed(app, rack, window),
		RackID:      rack,
		LoadScale:   e.loadScale(window),
		Balancer:    e.cfg.Balancer,
		FlowletGap:  e.cfg.FlowletGap,
		BufferBytes: e.cfg.BufferBytes,
		Alpha:       e.cfg.Alpha,
	})
}

// randomPort picks the window's measured port, mirroring §4.2 ("for each
// rack, we pick a random port").
func (e *Experiment) randomPort(app workload.App, rack, window int) int {
	src := rng.New(e.cfg.Seed).Split(fmt.Sprintf("port/%s/r%d/w%d", app, rack, window))
	return src.Intn(topo.Default(e.cfg.Servers).NumPorts())
}

// ByteCampaign is a single-counter byte campaign over random ports — the
// highest-resolution data set, feeding Figs 3, 4, 6 and Table 2.
type ByteCampaign struct {
	App workload.App
	// Interval is the sampling interval (25 µs, the paper's Fig 3).
	Interval simclock.Duration
	// WindowSeries holds one utilization series per (rack, window).
	WindowSeries [][]analysis.UtilPoint
	// Ports records which port each window measured.
	Ports []int
}

// ByteCampaignInterval is the paper's finest byte-counter interval.
const ByteCampaignInterval = 25 * simclock.Microsecond

// formatName renders a wire format for trace metadata, keeping the zero
// value as "" so default-format campaigns stay byte-identical to
// campaigns recorded before formats were selectable.
func formatName(f wire.Format) string {
	if f == 0 {
		return ""
	}
	return f.String()
}

// RunByteCampaign records the single-byte-counter campaign for one app at
// the given interval (0 = 25 µs), fanning the (rack, window) cells across
// the experiment's worker pool.
func (e *Experiment) RunByteCampaign(ctx context.Context, app workload.App, interval simclock.Duration) (*ByteCampaign, error) {
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	type window struct {
		series []analysis.UtilPoint
		port   int
	}
	cells := e.campaignCells([]workload.App{app}, e.RandomPortCounters(app), interval, 0)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (window, error) {
		port := e.randomPort(app, run.Cell.RackID, run.Cell.Window)
		series, err := analysis.UtilizationSeries(run.Samples, run.Net.Switch().Port(port).Speed())
		if err != nil {
			return window{}, err
		}
		return window{series: series, port: port}, nil
	})
	if err != nil {
		return nil, err
	}
	c := &ByteCampaign{App: app, Interval: interval}
	for _, w := range wins {
		c.WindowSeries = append(c.WindowSeries, w.series)
		c.Ports = append(c.Ports, w.port)
	}
	return c, nil
}

// RecordCampaign runs a campaign for one app and persists it as a trace
// directory (see internal/trace). plan chooses the counters per
// (rack, window) — e.g. a random port's byte counter, or every port.
// Window files are indexed rack-major: index = rack*Windows + window; each
// window is an independent file, so the directory is byte-identical
// regardless of worker count or completion order. A canceled or failed
// campaign discards everything it wrote — partial results are removed, not
// left as a half-trace.
func (e *Experiment) RecordCampaign(ctx context.Context, app workload.App, dir string, interval simclock.Duration, notes string, plan CounterPlan) error {
	if plan == nil {
		return fmt.Errorf("core: RecordCampaign without a counter plan")
	}
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	rack := e.Rack()
	probe := plan(rack, 0, 0)
	w, err := trace.CreateWithOpener(dir, trace.Meta{
		App:         app.String(),
		NumServers:  rack.NumServers,
		NumUplinks:  rack.NumUplinks,
		ServerSpeed: rack.ServerSpeed,
		UplinkSpeed: rack.UplinkSpeed,
		Interval:    interval,
		WindowDur:   e.cfg.WindowDur,
		Windows:     e.cfg.Racks * e.cfg.Windows,
		Seed:        e.cfg.Seed,
		Counters:    probe,
		Format:      formatName(e.cfg.WireFormat),
		Notes:       notes,
	}, e.cfg.TraceOpener)
	if err != nil {
		return err
	}
	var mu sync.Mutex // trace.Writer is not safe for concurrent WriteWindow
	cells := e.campaignCells([]workload.App{app}, plan, interval, 0)
	err = e.Runner().Run(ctx, cells, func(i int, run *CellRun) error {
		mu.Lock()
		defer mu.Unlock()
		if err := w.WriteWindow(i, uint32(run.Cell.RackID), run.Samples); err != nil {
			return err
		}
		recordCellTrace(e.cfg.Tracer, run, e.cfg.Warmup)
		return nil
	})
	if err != nil {
		w.Discard()
		return err
	}
	return nil
}

// RandomPortCounters returns a CounterPlan polling one random port's
// egress byte counter per window — the Fig 3/4/6 campaign plan.
func (e *Experiment) RandomPortCounters(app workload.App) CounterPlan {
	return func(_ topo.Rack, rackID, window int) []collector.CounterSpec {
		return []collector.CounterSpec{{
			Port: e.randomPort(app, rackID, window),
			Dir:  asic.TX,
			Kind: asic.KindBytes,
		}}
	}
}

// AllPortCounters returns a CounterPlan polling every port's egress byte
// counter (plus the shared-buffer peak if withBuffer) — the Fig 9/10
// campaign plan.
func AllPortCounters(withBuffer bool) CounterPlan {
	return func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		var out []collector.CounterSpec
		if withBuffer {
			out = append(out, collector.CounterSpec{Kind: asic.KindBufferPeak})
		}
		for p := 0; p < rack.NumPorts(); p++ {
			out = append(out, collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindBytes})
		}
		return out
	}
}

// FullCounters returns a CounterPlan polling the paper's complete
// counter set: every port's egress byte counter and RMON size-bin
// histogram plus the shared-buffer peak — the heaviest realistic agent
// configuration, and the reference workload for the wire-format gates.
func FullCounters() CounterPlan {
	return func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		out := []collector.CounterSpec{{Kind: asic.KindBufferPeak}}
		for p := 0; p < rack.NumPorts(); p++ {
			out = append(out,
				collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindBytes},
				collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindSizeBins})
		}
		return out
	}
}

// Bursts returns all bursts across windows at the threshold.
func (c *ByteCampaign) Bursts(threshold float64) []analysis.Burst {
	var out []analysis.Burst
	for _, s := range c.WindowSeries {
		out = append(out, analysis.Bursts(s, threshold)...)
	}
	return out
}

// BurstDurationsMicros returns every burst duration in µs (Fig 3).
func (c *ByteCampaign) BurstDurationsMicros(threshold float64) []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.BurstDurations(analysis.Bursts(s, threshold))...)
	}
	return out
}

// InterBurstGapsMicros returns every within-window inter-burst gap in µs
// (Fig 4). Gaps across window boundaries are not observable and excluded.
func (c *ByteCampaign) InterBurstGapsMicros(threshold float64) []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.InterBurstGaps(analysis.Bursts(s, threshold))...)
	}
	return out
}

// Utils returns every utilization sample (Fig 6).
func (c *ByteCampaign) Utils() []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.Utils(s)...)
	}
	return out
}
