package core

import (
	"fmt"
	"math"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/obs"
	"mburst/internal/rng"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// Experiment runs measurement campaigns under one Config.
type Experiment struct {
	cfg Config

	// Campaign telemetry (nil-safe; see Config.Metrics). All pollers the
	// experiment builds share pollerM, aggregating poll/miss/cost totals
	// across windows.
	pollerM *collector.PollerMetrics
	windows *obs.Counter
	samples *obs.Counter
}

// NewExperiment validates cfg and returns an Experiment.
func NewExperiment(cfg Config) (*Experiment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Experiment{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		e.pollerM = collector.NewPollerMetrics(reg)
		e.windows = reg.Counter("mburst_campaign_windows_total",
			"Measurement windows recorded across campaigns.")
		e.samples = reg.Counter("mburst_campaign_samples_total",
			"Counter samples captured across campaigns.")
	}
	return e, nil
}

// Config returns the experiment's configuration.
func (e *Experiment) Config() Config { return e.cfg }

// Rack returns the rack topology used throughout the experiment.
func (e *Experiment) Rack() topo.Rack { return topo.Default(e.cfg.Servers) }

// threshold returns the configured hot threshold.
func (e *Experiment) threshold() float64 {
	if e.cfg.HotThreshold > 0 {
		return e.cfg.HotThreshold
	}
	return analysis.DefaultHotThreshold
}

// loadScale returns the diurnal load factor for a window: a day-shaped
// sinusoid between ~0.65 and ~1.35 of nominal load.
func (e *Experiment) loadScale(window int) float64 {
	if !e.cfg.Diurnal || e.cfg.Windows <= 1 {
		return 1
	}
	phase := 2 * math.Pi * float64(window) / float64(e.cfg.Windows)
	return 1 + 0.35*math.Sin(phase)
}

// windowSeed derives the deterministic seed for one (app, rack, window).
func (e *Experiment) windowSeed(app workload.App, rack, window int) uint64 {
	return rng.New(e.cfg.Seed).Split(fmt.Sprintf("%s/r%d/w%d", app, rack, window)).Uint64()
}

// newNet builds the simulated rack for one (app, rack, window).
func (e *Experiment) newNet(app workload.App, rack, window int) (*simnet.Net, error) {
	return simnet.New(simnet.Config{
		Rack:        topo.Default(e.cfg.Servers),
		Params:      e.cfg.params(app),
		Seed:        e.windowSeed(app, rack, window),
		RackID:      rack,
		LoadScale:   e.loadScale(window),
		Balancer:    e.cfg.Balancer,
		FlowletGap:  e.cfg.FlowletGap,
		BufferBytes: e.cfg.BufferBytes,
		Alpha:       e.cfg.Alpha,
	})
}

// pollWindow warms the simulation up, then records one window with the
// collection framework and returns the captured samples. The poller's
// randomness derives from the window seed, keeping the whole pipeline
// deterministic.
func (e *Experiment) pollWindow(net *simnet.Net, counters []collector.CounterSpec, interval simclock.Duration) ([]wire.Sample, error) {
	return e.pollFor(net, counters, interval, e.cfg.WindowDur)
}

// pollFor is pollWindow with an explicit recording duration (Fig 2 uses a
// longer continuous run than the standard window).
func (e *Experiment) pollFor(net *simnet.Net, counters []collector.CounterSpec, interval, dur simclock.Duration) ([]wire.Sample, error) {
	var captured []wire.Sample
	p, err := collector.NewPoller(collector.PollerConfig{
		Interval:      interval,
		Counters:      counters,
		DedicatedCore: true,
		Metrics:       e.pollerM,
	}, net.Switch(), rng.New(e.cfg.Seed^0x706f6c6c), collector.EmitterFunc(func(s wire.Sample) {
		captured = append(captured, s)
	}))
	if err != nil {
		return nil, err
	}
	net.Run(e.cfg.Warmup)
	// Clear the peak register so warmup bursts don't leak into the
	// first recorded sample.
	net.Switch().ReadPeakBufferAndClear()
	p.Install(net.Scheduler())
	net.Run(dur)
	p.Stop()
	e.windows.Inc()
	e.samples.Add(uint64(len(captured)))
	return captured, nil
}

// randomPort picks the window's measured port, mirroring §4.2 ("for each
// rack, we pick a random port").
func (e *Experiment) randomPort(app workload.App, rack, window int) int {
	src := rng.New(e.cfg.Seed).Split(fmt.Sprintf("port/%s/r%d/w%d", app, rack, window))
	return src.Intn(topo.Default(e.cfg.Servers).NumPorts())
}

// ByteCampaign is a single-counter byte campaign over random ports — the
// highest-resolution data set, feeding Figs 3, 4, 6 and Table 2.
type ByteCampaign struct {
	App workload.App
	// Interval is the sampling interval (25 µs, the paper's Fig 3).
	Interval simclock.Duration
	// WindowSeries holds one utilization series per (rack, window).
	WindowSeries [][]analysis.UtilPoint
	// Ports records which port each window measured.
	Ports []int
}

// ByteCampaignInterval is the paper's finest byte-counter interval.
const ByteCampaignInterval = 25 * simclock.Microsecond

// RunByteCampaign records the single-byte-counter campaign for one app at
// the given interval (0 = 25 µs).
func (e *Experiment) RunByteCampaign(app workload.App, interval simclock.Duration) (*ByteCampaign, error) {
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	c := &ByteCampaign{App: app, Interval: interval}
	for rack := 0; rack < e.cfg.Racks; rack++ {
		for w := 0; w < e.cfg.Windows; w++ {
			net, err := e.newNet(app, rack, w)
			if err != nil {
				return nil, err
			}
			port := e.randomPort(app, rack, w)
			samples, err := e.pollWindow(net, []collector.CounterSpec{
				{Port: port, Dir: asic.TX, Kind: asic.KindBytes},
			}, interval)
			if err != nil {
				return nil, err
			}
			series, err := analysis.UtilizationSeries(samples, net.Switch().Port(port).Speed())
			if err != nil {
				return nil, fmt.Errorf("core: %s rack %d window %d: %w", app, rack, w, err)
			}
			c.WindowSeries = append(c.WindowSeries, series)
			c.Ports = append(c.Ports, port)
		}
	}
	return c, nil
}

// RecordCampaign runs a campaign for one app and persists it as a trace
// directory (see internal/trace). countersFor chooses the counter plan per
// (rack, window) — e.g. a random port's byte counter, or every port.
// Window files are indexed rack-major: index = rack*Windows + window.
func (e *Experiment) RecordCampaign(app workload.App, dir string, interval simclock.Duration, notes string,
	countersFor func(rack topo.Rack, rackID, window int) []collector.CounterSpec) error {
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	rack := e.Rack()
	probe := countersFor(rack, 0, 0)
	w, err := trace.Create(dir, trace.Meta{
		App:         app.String(),
		NumServers:  rack.NumServers,
		NumUplinks:  rack.NumUplinks,
		ServerSpeed: rack.ServerSpeed,
		UplinkSpeed: rack.UplinkSpeed,
		Interval:    interval,
		WindowDur:   e.cfg.WindowDur,
		Windows:     e.cfg.Racks * e.cfg.Windows,
		Seed:        e.cfg.Seed,
		Counters:    probe,
		Notes:       notes,
	})
	if err != nil {
		return err
	}
	for rackID := 0; rackID < e.cfg.Racks; rackID++ {
		for win := 0; win < e.cfg.Windows; win++ {
			net, err := e.newNet(app, rackID, win)
			if err != nil {
				return err
			}
			samples, err := e.pollWindow(net, countersFor(rack, rackID, win), interval)
			if err != nil {
				return err
			}
			if err := w.WriteWindow(rackID*e.cfg.Windows+win, uint32(rackID), samples); err != nil {
				return err
			}
		}
	}
	return nil
}

// RandomPortCounters returns a countersFor plan polling one random port's
// egress byte counter per window — the Fig 3/4/6 campaign plan.
func (e *Experiment) RandomPortCounters(app workload.App) func(rack topo.Rack, rackID, window int) []collector.CounterSpec {
	return func(_ topo.Rack, rackID, window int) []collector.CounterSpec {
		return []collector.CounterSpec{{
			Port: e.randomPort(app, rackID, window),
			Dir:  asic.TX,
			Kind: asic.KindBytes,
		}}
	}
}

// AllPortCounters returns a countersFor plan polling every port's egress
// byte counter (plus the shared-buffer peak if withBuffer) — the Fig 9/10
// campaign plan.
func AllPortCounters(withBuffer bool) func(rack topo.Rack, rackID, window int) []collector.CounterSpec {
	return func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		var out []collector.CounterSpec
		if withBuffer {
			out = append(out, collector.CounterSpec{Kind: asic.KindBufferPeak})
		}
		for p := 0; p < rack.NumPorts(); p++ {
			out = append(out, collector.CounterSpec{Port: p, Dir: asic.TX, Kind: asic.KindBytes})
		}
		return out
	}
}

// Bursts returns all bursts across windows at the threshold.
func (c *ByteCampaign) Bursts(threshold float64) []analysis.Burst {
	var out []analysis.Burst
	for _, s := range c.WindowSeries {
		out = append(out, analysis.Bursts(s, threshold)...)
	}
	return out
}

// BurstDurationsMicros returns every burst duration in µs (Fig 3).
func (c *ByteCampaign) BurstDurationsMicros(threshold float64) []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.BurstDurations(analysis.Bursts(s, threshold))...)
	}
	return out
}

// InterBurstGapsMicros returns every within-window inter-burst gap in µs
// (Fig 4). Gaps across window boundaries are not observable and excluded.
func (c *ByteCampaign) InterBurstGapsMicros(threshold float64) []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.InterBurstGaps(analysis.Bursts(s, threshold))...)
	}
	return out
}

// Utils returns every utilization sample (Fig 6).
func (c *ByteCampaign) Utils() []float64 {
	var out []float64
	for _, s := range c.WindowSeries {
		out = append(out, analysis.Utils(s)...)
	}
	return out
}
