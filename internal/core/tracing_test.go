package core

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"mburst/internal/ptrace"
	"mburst/internal/workload"
)

// recordTracedCampaign runs the faulted runnerConfig campaign with a
// span tracer attached and returns the canonical dump bytes.
func recordTracedCampaign(t *testing.T, workers int) ([]byte, *ptrace.Tracer) {
	t.Helper()
	cfg := runnerConfig(workers)
	sched := stuckSchedule()
	cfg.FaultSchedule = &sched
	tracer := ptrace.New(ptrace.Config{Capacity: 1 << 14, Seed: cfg.Seed})
	cfg.Tracer = tracer
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "c")
	err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "traced",
		exp.RandomPortCounters(workload.Cache))
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Evicted() != 0 {
		t.Fatalf("span ring evicted %d spans; byte-identity needs a ring that holds the campaign", tracer.Evicted())
	}
	var buf bytes.Buffer
	if err := tracer.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tracer
}

// TestCampaignTraceByteIdentity is the ISSUE 6 acceptance invariant: the
// span dump of a faulted campaign is byte-identical across worker
// counts, and every persisted batch carries a complete
// poll→encode→send→ingest→gate→archive→figures chain.
func TestCampaignTraceByteIdentity(t *testing.T) {
	serial, tracer := recordTracedCampaign(t, 1)
	parallel, _ := recordTracedCampaign(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("span dumps differ by worker count: serial %d bytes, parallel %d bytes",
			len(serial), len(parallel))
	}

	spans := tracer.Snapshot()
	if len(spans) == 0 {
		t.Fatal("campaign recorded no spans")
	}
	views := ptrace.GroupTraces(spans)
	for _, v := range views {
		// All stages except client.backoff and the collector durability
		// markers (checkpoint/recover), which a campaign pipeline never hits.
		const wantSpans = 7
		if len(v.Spans) != wantSpans {
			t.Fatalf("trace %x has %d spans, want %d: %+v", uint64(v.ID), len(v.Spans), wantSpans, v.Spans)
		}
		for i, stage := range []ptrace.Stage{
			ptrace.StagePollRead, ptrace.StageWireEncode, ptrace.StageClientSend,
			ptrace.StageServerIngest, ptrace.StageEpochGate, ptrace.StageArchiveWrite,
			ptrace.StageFiguresApply,
		} {
			if v.Spans[i].Stage != stage {
				t.Fatalf("trace %x span %d = %s, want %s", uint64(v.ID), i, v.Spans[i].Stage, stage)
			}
		}
		// Post-poll stages run back-to-back from the poll window's end:
		// the chain is contiguous in simulated time.
		for i := 2; i < len(v.Spans); i++ {
			if v.Spans[i].Start != v.Spans[i-1].Stop {
				t.Fatalf("trace %x: %s starts at %v, previous %s stopped at %v",
					uint64(v.ID), v.Spans[i].Stage, v.Spans[i].Start, v.Spans[i-1].Stage, v.Spans[i-1].Stop)
			}
		}
		if got := v.Spans[4].Verdict; got != ptrace.VerdictAccept {
			t.Errorf("trace %x gate verdict = %q, want %q", uint64(v.ID), got, ptrace.VerdictAccept)
		}
	}

	// The stuck/stall schedule is active in every cell, so some poll.read
	// spans must carry the overlapping fault kinds as an attribute — that
	// is how a stall becomes visible in the waterfall.
	var faulted int
	kinds := map[string]bool{}
	for _, sp := range spans {
		if sp.Stage == ptrace.StagePollRead && sp.Fault != "" {
			faulted++
			for _, k := range strings.Split(sp.Fault, ",") {
				kinds[k] = true
			}
		}
	}
	if faulted == 0 {
		t.Error("no poll.read span carries a fault attribute despite an active schedule")
	}
	if !kinds["stuck"] || !kinds["stall"] {
		t.Errorf("fault kinds on poll.read = %v, want stuck and stall", kinds)
	}
}

// TestCampaignTraceSampling pins deterministic head sampling at campaign
// scale: a sampled tracer keeps a strict, seed-stable subset of the full
// run's traces with every kept trace's chain intact.
func TestCampaignTraceSampling(t *testing.T) {
	record := func(rate float64) map[ptrace.TraceID]int {
		cfg := runnerConfig(2)
		tracer := ptrace.New(ptrace.Config{Capacity: 1 << 14, Seed: cfg.Seed, SampleRate: rate})
		cfg.Tracer = tracer
		exp, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "c")
		err = exp.RecordCampaign(context.Background(), workload.Cache, dir, 0, "sampled",
			exp.RandomPortCounters(workload.Cache))
		if err != nil {
			t.Fatal(err)
		}
		out := map[ptrace.TraceID]int{}
		for _, sp := range tracer.Snapshot() {
			out[sp.Trace]++
		}
		return out
	}
	full := record(0)
	sampled := record(0.5)
	if len(sampled) == 0 || len(sampled) >= len(full) {
		t.Fatalf("sampled %d of %d traces; want a strict non-empty subset", len(sampled), len(full))
	}
	for id, n := range sampled {
		if full[id] == 0 {
			t.Errorf("sampled trace %x absent from the full run", uint64(id))
		}
		if n != 7 { // see TestCampaignTraceByteIdentity's wantSpans
			t.Errorf("sampled trace %x has %d spans, want 7", uint64(id), n)
		}
	}
	if again := record(0.5); len(again) != len(sampled) {
		t.Errorf("re-run kept %d traces, first run kept %d; head sampling must be seed-stable", len(again), len(sampled))
	}
}
