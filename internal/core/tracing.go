package core

import (
	"sort"
	"strings"

	"mburst/internal/fault"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
)

// recordCellTrace records the full pipeline chain for one recorded cell,
// one trace per persisted wire batch (trace.WriteWindow chunks samples
// at trace.BatchSize). The single-process campaign writes windows
// directly — there is no client, service, or gate goroutine — yet the
// span windows are computed from exactly the same batch content the
// distributed path would use, so a campaign trace and a live agent →
// collector trace of the same batch are byte-identical. Faults from the
// cell's schedule that overlap a batch's sample window are attributed on
// its poll.read span.
func recordCellTrace(t *ptrace.Tracer, run *CellRun, warmup simclock.Duration) {
	if t == nil || len(run.Samples) == 0 {
		return
	}
	// Sample times are absolute; fault offsets are relative to recording
	// start (poller install, after warmup).
	start := simclock.Epoch.Add(warmup)
	rack := uint32(run.Cell.RackID)
	for off := 0; off < len(run.Samples); off += trace.BatchSize {
		end := off + trace.BatchSize
		if end > len(run.Samples) {
			end = len(run.Samples)
		}
		b := &wire.Batch{Rack: rack, Samples: run.Samples[off:end]}
		tr := t.Batch(b.Rack, b.Epoch, b.Samples[0].Time)
		if !tr.Sampled() {
			continue
		}
		first := b.Samples[0].Time
		last := b.Samples[len(b.Samples)-1].Time
		n := len(b.Samples)
		bytes := wire.EncodedSize(b)

		poll := tr.Start(ptrace.StagePollRead, first).SetBatch(n, bytes)
		if f := overlappingFaults(run.Faults, first.Sub(start), last.Sub(start)); f != "" {
			poll.SetFault(f)
		}
		poll.End(last)

		m := t.Model()
		for _, stage := range []ptrace.Stage{
			ptrace.StageWireEncode, ptrace.StageClientSend, ptrace.StageServerIngest,
			ptrace.StageEpochGate, ptrace.StageArchiveWrite, ptrace.StageFiguresApply,
		} {
			s, e := m.Window(stage, last, n, bytes)
			sp := tr.Start(stage, s).SetBatch(n, bytes)
			if stage == ptrace.StageEpochGate {
				sp.SetVerdict(ptrace.VerdictAccept)
			}
			sp.End(e)
		}
	}
}

// overlappingFaults names the fault kinds whose injection window
// intersects [lo, hi] (recording-relative offsets), sorted and
// comma-joined — "" when none do.
func overlappingFaults(s fault.Schedule, lo, hi simclock.Duration) string {
	kinds := map[string]bool{}
	for _, f := range s.Faults {
		if f.At <= hi && f.End() > lo {
			kinds[f.Kind.String()] = true
		}
	}
	if len(kinds) == 0 {
		return ""
	}
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
