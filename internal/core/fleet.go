package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"

	"mburst/internal/collector"
	"mburst/internal/fault"
	"mburst/internal/shard"
	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// This file is the in-process fleet harness: N rack simulations fanned
// across the campaign runner, their sample streams encoded through the
// agent wire format and routed by a rendezvous placement onto M
// collector shards, whose published cuts an Aggregator merges into the
// fleet-wide live figures. It is the scale rig the paper's collection
// plane needs (§4.2 runs one collector per handful of racks; a fleet
// study needs hundreds) and the proof obligation is exactness: at any
// shard count, any worker count, and under shard-crash schedules, the
// fleet totals and every derived figure statistic are byte-identical to
// one collector that ingested everything.

// FleetConfig parameterizes RunFleet. The rack count, window duration,
// seed and worker pool come from the Experiment's Config; the fleet
// config adds the collection-plane shape on top.
type FleetConfig struct {
	// App selects the workload on every rack.
	App workload.App
	// Shards is the collector shard count (>= 1).
	Shards int
	// PlacementSeed seeds the rendezvous placement (see shard.Uniform).
	PlacementSeed uint64
	// Interval is the sampling interval (0 = ByteCampaignInterval).
	Interval simclock.Duration
	// BatchSize is the agent's samples-per-batch flush threshold
	// (0 = collector.DefaultBatchSize).
	BatchSize int
	// PublishEvery is the shard cut cadence in admitted batches: every
	// so many batches a shard publishes its cumulative state to the
	// aggregator via the lossy Offer path (a final blocking cut always
	// lands). 0 = 8.
	PublishEvery int
	// QueueDepth bounds the aggregator fan-in queue (0 = 4×Shards).
	QueueDepth int
	// Dir, when non-empty, makes the shards durable and lays out a fleet
	// campaign directory: campaign.json (with the placement), fleet.json
	// and one archive directory per shard. Required when Faults strike.
	Dir string
	// CheckpointEvery is the durable shards' checkpoint cadence in
	// admitted batches (0 = DurableIngest's default).
	CheckpointEvery int
	// Oracle also runs a single unsharded collector over the same
	// decoded stream and sets ByteExact by comparing fleet state,
	// figures render and ingest totals against it.
	Oracle bool
	// Faults schedules shard strikes: the schedule's kill/torn/shortw
	// faults are assigned round-robin over shards and each converts to a
	// kill of that shard at a batch-count offset proportional to the
	// fault time. Every struck shard resumes from its archive +
	// checkpoint, and the harness re-delivers the shard's recent-batch
	// ring (the in-process stand-in for agent spool retransmission).
	Faults fault.Schedule
	// Notes is recorded in the campaign metadata.
	Notes string
}

func (cfg *FleetConfig) withDefaults() {
	if cfg.Interval <= 0 {
		cfg.Interval = ByteCampaignInterval
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = collector.DefaultBatchSize
	}
	if cfg.PublishEvery <= 0 {
		cfg.PublishEvery = 8
	}
}

// FleetCheckpointName is the fleet-wide checkpoint file RunFleet leaves
// in a durable fleet directory, composed from the shard checkpoints.
const FleetCheckpointName = "fleet_checkpoint.json"

// FleetResult is the outcome of one fleet campaign.
type FleetResult struct {
	// Racks / Shards / Placement echo the campaign shape.
	Racks     int
	Shards    int
	Placement shard.Placement
	// Batches / Samples / WireBytes total the traffic fanned into the
	// collection plane (wire bytes count agent-side framing).
	Batches   uint64
	Samples   uint64
	WireBytes uint64
	// Kills / Resumes / Replayed / Redelivered / Shortfall account the
	// fault schedule's effect on the plane.
	Kills       int
	Resumes     int
	Replayed    uint64
	Redelivered uint64
	Shortfall   uint64
	// Fleet is the aggregator's merged fleet state; Figures its rendered
	// Fig 3/4/6/9 snapshot.
	Fleet   collector.FleetState
	Figures collector.FiguresSnapshot
	// Oracle reports whether the single-collector oracle ran; ByteExact
	// whether every compared surface matched it bit-for-bit.
	Oracle    bool
	ByteExact bool
}

// fleetStrike is one scheduled shard crash, triggered when the shard's
// admitted-batch count reaches at.
type fleetStrike struct {
	at   uint64
	kind fault.Kind
	frac float64
}

// fleetRingSize bounds the per-shard recent-batch ring redelivered
// after a resume — the in-process spool horizon. It only needs to cover
// what a single strike can lose (the in-flight torn/short write);
// archive replay restores everything older.
const fleetRingSize = 8

// fleetShard is one shard's runtime state. A mutex serializes delivery,
// publishing and crash/resume per shard; racks on different shards
// proceed in parallel.
type fleetShard struct {
	mu sync.Mutex

	id      int
	s       *collector.Shard
	arch    *trace.ArchiveWriter // nil when volatile
	dir     string
	acfg    trace.ArchiveConfig
	chaos   *fault.WriteChaos
	ckpt    string
	every   int
	pl      *shard.Placement
	figures collector.LiveFiguresConfig

	batches      uint64
	samples      uint64
	sincePublish int
	lastSeq      uint64

	ring    []*wire.Batch // nil unless strikes are scheduled
	strikes []fleetStrike

	kills       int
	resumes     int
	replayed    uint64
	redelivered uint64
	shortfall   uint64
}

// newShardPipeline builds one shard incarnation (fresh accumulators;
// Resume repopulates them on the crash path).
func (fs *fleetShard) newShardPipeline(arch *trace.ArchiveWriter) (*collector.Shard, error) {
	figs, err := collector.NewLiveFigures(fs.figures)
	if err != nil {
		return nil, err
	}
	var sink collector.ArchiveSink
	if arch != nil {
		sink = arch
	}
	return collector.NewShard(collector.ShardConfig{
		ID:             fs.id,
		Placement:      fs.pl,
		Figures:        figs,
		Stats:          &collector.IngestStats{},
		Archive:        sink,
		CheckpointPath: fs.ckpt,
		Every:          fs.every,
	})
}

// deliver routes one decoded batch into the shard, triggering any due
// strike and the publish cadence.
func (fs *fleetShard) deliver(b *wire.Batch, agg *collector.Aggregator, publishEvery int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	var ev *fleetStrike
	if len(fs.strikes) > 0 && fs.batches+1 >= fs.strikes[0].at {
		ev = &fs.strikes[0]
		fs.strikes = fs.strikes[1:]
		switch ev.kind {
		case fault.KindTornWrite:
			fs.chaos.ArmTorn(ev.frac)
		case fault.KindShortWrite:
			fs.chaos.ArmShort(ev.frac)
		}
	}

	fs.s.Handle(b)
	fs.batches++
	fs.samples += uint64(len(b.Samples))
	if fs.ring != nil {
		cp := &wire.Batch{Rack: b.Rack, Epoch: b.Epoch,
			Samples: append([]wire.Sample(nil), b.Samples...)}
		fs.ring = append(fs.ring, cp)
		if len(fs.ring) > fleetRingSize {
			fs.ring = fs.ring[1:]
		}
	}

	if ev != nil {
		if err := fs.resume(); err != nil {
			return err
		}
	} else if err := fs.s.Err(); err != nil {
		return fmt.Errorf("core: shard %d ingest: %w", fs.id, err)
	}

	fs.sincePublish++
	if fs.sincePublish >= publishEvery {
		fs.sincePublish = 0
		u := fs.s.Publish()
		fs.lastSeq = u.Seq
		agg.Offer(u)
	}
	return nil
}

// resume kills the current incarnation (no Close, no final sync) and
// resurrects the shard from its archive and checkpoint, then re-delivers
// the recent-batch ring; the restored epoch gate dedups the overlap.
func (fs *fleetShard) resume() error {
	fs.kills++
	arch, _, err := trace.ResumeArchive(fs.dir, fs.acfg)
	if err != nil {
		return fmt.Errorf("core: shard %d: resume archive: %w", fs.id, err)
	}
	s, err := fs.newShardPipeline(arch)
	if err != nil {
		return err
	}
	dir := fs.dir
	rep, err := s.Resume(func(fn func(*wire.Batch) error) error {
		return trace.IterArchive(dir, fn)
	})
	if err != nil {
		return fmt.Errorf("core: shard %d: resume: %w", fs.id, err)
	}
	s.ResumeSeq(fs.lastSeq)
	fs.s, fs.arch = s, arch
	fs.resumes++
	fs.replayed += rep.Replayed
	fs.shortfall += rep.Shortfall
	for _, rb := range fs.ring {
		s.Handle(rb)
		fs.redelivered++
	}
	if err := s.Err(); err != nil {
		return fmt.Errorf("core: shard %d: post-resume ingest: %w", fs.id, err)
	}
	return nil
}

// finish cuts the shard's final state: a blocking publish, a durable
// checkpoint, and the sealed archive.
func (fs *fleetShard) finish(agg *collector.Aggregator) (collector.CheckpointState, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.s.Err(); err != nil {
		return collector.CheckpointState{}, fmt.Errorf("core: shard %d ingest: %w", fs.id, err)
	}
	u := fs.s.Publish()
	fs.lastSeq = u.Seq
	agg.Deliver(u)
	st := fs.s.CheckpointState()
	if fs.arch != nil {
		if err := fs.s.Checkpoint(); err != nil {
			return collector.CheckpointState{}, err
		}
		if err := fs.arch.Close(); err != nil {
			return collector.CheckpointState{}, err
		}
	}
	return st, nil
}

// fleetStrikes converts a fault schedule into per-shard batch-count
// strikes: crash faults are assigned round-robin over shards, and each
// fault's window offset maps proportionally onto the shard's expected
// batch count.
func fleetStrikes(sched fault.Schedule, window simclock.Duration, perShard []uint64) [][]fleetStrike {
	out := make([][]fleetStrike, len(perShard))
	n := 0
	for _, f := range sched.Faults {
		switch f.Kind {
		case fault.KindCollectorKill, fault.KindTornWrite, fault.KindShortWrite:
		default:
			continue
		}
		k := n % len(perShard)
		n++
		est := perShard[k]
		if est < 2 {
			continue // a shard this small has no mid-stream to strike
		}
		at := uint64(float64(f.At) / float64(window) * float64(est))
		if at < 1 {
			at = 1
		}
		if at > est-1 {
			at = est - 1
		}
		out[k] = append(out[k], fleetStrike{at: at, kind: f.Kind, frac: f.Factor})
	}
	for k := range out {
		s := out[k]
		for i := 1; i < len(s); i++ {
			if s[i].at <= s[i-1].at {
				s[i].at = s[i-1].at + 1
			}
		}
	}
	return out
}

// RunFleet executes one fleet campaign: every rack in the Experiment's
// Config runs one measurement window on the campaign runner, its sample
// stream is batched and round-tripped through the agent wire format,
// and the decoded batches are routed by the placement onto the shards.
func (e *Experiment) RunFleet(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	cfg.withDefaults()
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("core: fleet needs a positive shard count, got %d", cfg.Shards)
	}
	if !cfg.Faults.Empty() && cfg.Dir == "" {
		return nil, errors.New("core: fleet fault schedules need a durable Dir")
	}
	pl, err := shard.Uniform(cfg.Shards, cfg.PlacementSeed)
	if err != nil {
		return nil, err
	}

	rack := e.Rack()
	figCfg := collector.LiveFiguresConfig{
		SpeedOf: func(_ uint32, port uint16) uint64 {
			if rack.IsUplink(int(port)) {
				return rack.UplinkSpeed
			}
			return rack.ServerSpeed
		},
		IsUplink:  func(_ uint32, port uint16) bool { return rack.IsUplink(int(port)) },
		Threshold: e.threshold(),
	}

	plan := e.RandomPortCounters(cfg.App)
	if cfg.Dir != "" {
		if err := trace.WriteFleetMeta(cfg.Dir, trace.Meta{
			App:         cfg.App.String(),
			NumServers:  rack.NumServers,
			NumUplinks:  rack.NumUplinks,
			ServerSpeed: rack.ServerSpeed,
			UplinkSpeed: rack.UplinkSpeed,
			Interval:    cfg.Interval,
			WindowDur:   e.cfg.WindowDur,
			Windows:     e.cfg.Racks,
			Seed:        e.cfg.Seed,
			Counters:    plan(rack, 0, 0),
			Format:      formatName(e.cfg.WireFormat),
			Notes:       cfg.Notes,
			Placement:   &pl,
		}); err != nil {
			return nil, err
		}
	}

	// Expected per-shard batch counts, for mapping fault offsets.
	samplesPerRack := uint64(e.cfg.WindowDur/cfg.Interval) + 1
	batchesPerRack := (samplesPerRack + uint64(cfg.BatchSize) - 1) / uint64(cfg.BatchSize)
	perShard := make([]uint64, cfg.Shards)
	for r := 0; r < e.cfg.Racks; r++ {
		perShard[pl.ShardOf(uint32(r))] += batchesPerRack
	}
	strikes := fleetStrikes(cfg.Faults, e.cfg.WindowDur, perShard)

	shards := make([]*fleetShard, cfg.Shards)
	for k := range shards {
		fs := &fleetShard{id: k, pl: &pl, figures: figCfg, every: cfg.CheckpointEvery}
		if cfg.Dir != "" {
			fs.dir = filepath.Join(cfg.Dir, pl.Name(k))
			fs.ckpt = filepath.Join(fs.dir, "checkpoint.json")
			fs.chaos = fault.NewWriteChaos(nil)
			fs.acfg = trace.ArchiveConfig{Format: e.cfg.WireFormat, WrapWrites: fs.chaos.Wrap}
			arch, err := trace.CreateArchive(fs.dir, fs.acfg)
			if err != nil {
				return nil, err
			}
			fs.arch = arch
			fs.s, err = fs.newShardPipeline(arch)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			fs.s, err = fs.newShardPipeline(nil)
			if err != nil {
				return nil, err
			}
		}
		if len(strikes[k]) > 0 {
			fs.strikes = strikes[k]
			fs.ring = make([]*wire.Batch, 0, fleetRingSize+1)
		}
		shards[k] = fs
	}

	agg, err := collector.NewAggregator(collector.AggregatorConfig{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		Figures:    figCfg,
	})
	if err != nil {
		return nil, err
	}
	defer agg.Close()

	var oracle *collector.Shard
	var oracleMu sync.Mutex
	if cfg.Oracle {
		figs, err := collector.NewLiveFigures(figCfg)
		if err != nil {
			return nil, err
		}
		oracle, err = collector.NewShard(collector.ShardConfig{
			Figures: figs,
			Stats:   &collector.IngestStats{},
		})
		if err != nil {
			return nil, err
		}
	}

	var wireBytes atomic.Uint64
	cells := make([]Cell, e.cfg.Racks)
	for r := range cells {
		cells[r] = Cell{App: cfg.App, RackID: r, Window: 0, Plan: plan, Interval: cfg.Interval}
	}

	// Each cell is one rack's agent: batch the captured samples, encode
	// them through a per-rack wire stream (MBW3 delta chains are scoped
	// per connection), then decode and route to the owning shard — and,
	// when the oracle runs, into the unsharded pipeline too.
	err = e.Runner().Run(ctx, cells, func(_ int, run *CellRun) error {
		rackID := uint32(run.Cell.RackID)
		var buf bytes.Buffer
		w, err := wire.NewWriterFormat(&buf, e.cfg.WireFormat)
		if err != nil {
			return err
		}
		for lo := 0; lo < len(run.Samples); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(run.Samples) {
				hi = len(run.Samples)
			}
			b := &wire.Batch{Rack: rackID, Epoch: 1, Samples: run.Samples[lo:hi]}
			if err := w.WriteBatch(b); err != nil {
				return err
			}
		}
		wireBytes.Add(uint64(buf.Len()))

		target := shards[pl.ShardOf(rackID)]
		rd := wire.NewReader(&buf)
		rd.SetReuse(true)
		for {
			b, err := rd.ReadBatch()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return err
			}
			if oracle != nil {
				oracleMu.Lock()
				oracle.Handle(b)
				oracleMu.Unlock()
			}
			if err := target.deliver(b, agg, cfg.PublishEvery); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &FleetResult{
		Racks:     e.cfg.Racks,
		Shards:    cfg.Shards,
		Placement: pl,
		WireBytes: wireBytes.Load(),
		Oracle:    cfg.Oracle,
	}
	states := make([]collector.CheckpointState, cfg.Shards)
	man := trace.FleetManifest{Racks: e.cfg.Racks, Placement: pl}
	for k, fs := range shards {
		st, err := fs.finish(agg)
		if err != nil {
			return nil, err
		}
		states[k] = st
		res.Batches += fs.batches
		res.Samples += fs.samples
		res.Kills += fs.kills
		res.Resumes += fs.resumes
		res.Replayed += fs.replayed
		res.Redelivered += fs.redelivered
		res.Shortfall += fs.shortfall
		man.Shards = append(man.Shards, trace.FleetShard{
			ID: k, Name: pl.Name(k), Dir: pl.Name(k),
			Batches: fs.batches, Samples: fs.samples,
		})
	}
	agg.Flush()
	res.Fleet, err = agg.FleetState()
	if err != nil {
		return nil, err
	}
	res.Figures, err = agg.FleetFigures()
	if err != nil {
		return nil, err
	}

	if cfg.Dir != "" {
		if err := trace.WriteFleetManifest(cfg.Dir, man); err != nil {
			return nil, err
		}
		fckpt, err := collector.ComposeFleetCheckpoint(pl, states)
		if err != nil {
			return nil, err
		}
		if err := collector.SaveFleetCheckpoint(filepath.Join(cfg.Dir, FleetCheckpointName), fckpt); err != nil {
			return nil, err
		}
	}

	if oracle != nil {
		want := oracle.Publish()
		wantFigs, err := renderFigures(figCfg, want.Figures)
		if err != nil {
			return nil, err
		}
		res.ByteExact = reflect.DeepEqual(res.Fleet.Figures, want.Figures) &&
			reflect.DeepEqual(res.Fleet.Ingest, want.Ingest) &&
			reflect.DeepEqual(res.Figures, wantFigs)
	}
	return res, nil
}

// renderFigures renders a figures state through a fresh LiveFigures —
// the same path FleetFigures uses, applied to the oracle's state so the
// comparison covers the full derived-statistics surface.
func renderFigures(cfg collector.LiveFiguresConfig, st collector.FiguresState) (collector.FiguresSnapshot, error) {
	lf, err := collector.NewLiveFigures(cfg)
	if err != nil {
		return collector.FiguresSnapshot{}, err
	}
	lf.RestoreState(st)
	return lf.Snapshot(), nil
}
