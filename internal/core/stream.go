package core

import (
	"context"
	"fmt"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// This file is the streaming campaign/trace analysis path: single-pass
// per-cell reductions built on analysis.UtilState/BurstSegmenter and the
// stats accumulators, producing byte-identical results to the batch
// reductions (which survive only as the equivalence-test oracles in
// equivalence_test.go). The win is retention: a streaming cell keeps
// burst durations, gaps and transition counts — sparse in the sample
// stream — instead of materialized UtilPoint series.

// ByteWant selects which statistics StreamByteStats accumulates; leaving
// a field false keeps that statistic's memory at zero.
type ByteWant struct {
	Durations bool
	Gaps      bool
	Utils     bool
	Markov    bool
}

// ByteStats is the streaming reduction of a single-counter byte campaign
// (the Fig 3/4/6/Table 2 data set). Slices are ordered window-major
// (rack-major cell order, bursts in time order within each window),
// matching the batch ByteCampaign reductions element for element.
type ByteStats struct {
	App      workload.App
	Interval simclock.Duration
	// Durations holds burst durations in µs (Fig 3).
	Durations []float64
	// Gaps holds within-window inter-burst gaps in µs (Fig 4).
	Gaps []float64
	// Utils holds every utilization sample (Fig 6).
	Utils []float64
	// HotSamples counts utilization samples above the threshold.
	HotSamples int
	// Markov is the merged per-window Markov fit (Table 2).
	Markov stats.MarkovModel
	// Ports records which port each window measured.
	Ports []int
}

// StreamByteStats runs the single-byte-counter campaign for one app at
// the given interval (0 = 25 µs) and reduces each (rack, window) cell in
// one pass over its samples. Results are byte-identical to running
// RunByteCampaign and the corresponding ByteCampaign reductions at
// e.threshold() — the equivalence tests pin this per figure.
func (e *Experiment) StreamByteStats(ctx context.Context, app workload.App, interval simclock.Duration, want ByteWant) (*ByteStats, error) {
	if interval <= 0 {
		interval = ByteCampaignInterval
	}
	threshold := e.threshold()
	segment := want.Durations || want.Gaps
	type cellStats struct {
		durations, gaps, utils []float64
		hot                    int
		model                  stats.MarkovModel
		port                   int
	}
	cells := e.campaignCells([]workload.App{app}, e.RandomPortCounters(app), interval, 0)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (cellStats, error) {
		port := e.randomPort(app, run.Cell.RackID, run.Cell.Window)
		u := analysis.NewUtilState(run.Net.Switch().Port(port).Speed())
		var seg *analysis.BurstSegmenter
		if segment {
			seg = analysis.NewBurstSegmenter(analysis.SegmenterConfig{HotAbove: threshold})
		}
		var mk stats.MarkovAcc
		cs := cellStats{port: port}
		for _, s := range run.Samples {
			p, ok, err := u.Feed(s)
			if err != nil {
				return cellStats{}, err
			}
			if !ok {
				continue
			}
			if want.Utils {
				cs.utils = append(cs.utils, p.Util)
				if p.Util > threshold {
					cs.hot++
				}
			}
			if want.Markov {
				mk.Observe(p.Util > threshold)
			}
			if seg != nil {
				if tr, fired := seg.Feed(p); fired {
					switch tr.Kind {
					case analysis.SegOpen:
						if want.Gaps && tr.HasGap {
							cs.gaps = append(cs.gaps, float64(tr.Gap)/float64(simclock.Microsecond))
						}
					case analysis.SegClose:
						if want.Durations {
							cs.durations = append(cs.durations, float64(tr.Burst.Duration())/float64(simclock.Microsecond))
						}
					}
				}
			}
		}
		if err := u.Close(); err != nil {
			return cellStats{}, err
		}
		if seg != nil {
			if tr, fired := seg.Flush(); fired && want.Durations {
				cs.durations = append(cs.durations, float64(tr.Burst.Duration())/float64(simclock.Microsecond))
			}
		}
		if want.Markov {
			cs.model = mk.Model()
		}
		return cs, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ByteStats{App: app, Interval: interval}
	models := make([]stats.MarkovModel, 0, len(wins))
	for _, w := range wins {
		res.Durations = append(res.Durations, w.durations...)
		res.Gaps = append(res.Gaps, w.gaps...)
		res.Utils = append(res.Utils, w.utils...)
		res.HotSamples += w.hot
		res.Ports = append(res.Ports, w.port)
		models = append(models, w.model)
	}
	if want.Markov {
		res.Markov = stats.MergeMarkov(models...)
	}
	return res, nil
}

// TraceAnalysis is the reduction of a recorded trace for one analysis
// kind — the mbanalyze payload.
type TraceAnalysis struct {
	// Windows is the number of readable windows analyzed.
	Windows int
	// Durations/Gaps/Utils are filled for kinds bursts/gaps/util.
	Durations, Gaps, Utils []float64
	// Markov is filled for kind markov.
	Markov stats.MarkovModel
	// Share is filled for kind hotshare.
	Share analysis.HotShare
}

// traceWindowReduce accumulates one window's per-series results for one
// analysis kind, appended in analysis.SortedKeys order so batch and
// streaming modes assemble identically.
type traceWindowReduce struct {
	kind      string
	threshold float64
	isUplink  func(port int) bool
	res       *TraceAnalysis
}

func (t *traceWindowReduce) addSeries(key analysis.SeriesKey, series []analysis.UtilPoint) {
	switch t.kind {
	case "bursts":
		t.res.Durations = append(t.res.Durations, analysis.BurstDurations(analysis.Bursts(series, t.threshold))...)
	case "gaps":
		t.res.Gaps = append(t.res.Gaps, analysis.InterBurstGaps(analysis.Bursts(series, t.threshold))...)
	case "util":
		t.res.Utils = append(t.res.Utils, analysis.Utils(series)...)
	case "markov":
		t.res.Markov = stats.MergeMarkov(t.res.Markov, analysis.BurstMarkov(series, t.threshold))
	case "hotshare":
		for _, p := range series {
			if p.Util > t.threshold {
				if t.isUplink(int(key.Port)) {
					t.res.Share.UplinkHot++
				} else {
					t.res.Share.DownlinkHot++
				}
			}
		}
	}
}

// AnalyzeKinds lists the analysis kinds AnalyzeTrace accepts.
var AnalyzeKinds = []string{"bursts", "gaps", "util", "markov", "hotshare"}

// AnalyzeTrace reduces a recorded trace to one analysis kind. With
// stream=false every window is materialized via trace.Reader.Window and
// reduced with the batch analysis functions; with stream=true windows
// are consumed batch-by-batch via IterWindow through a SeriesDemux of
// per-series UtilState/BurstSegmenter/MarkovAcc machines, retaining only
// the analysis output (O(active series) state for bursts/gaps/markov/
// hotshare; kind util inherently retains one float per sample for its
// exact ECDF). Both modes produce byte-identical results; per-series
// damage (too short, non-monotonic) skips the series in both.
func AnalyzeTrace(r *trace.Reader, kind string, threshold float64, stream bool) (*TraceAnalysis, error) {
	known := false
	for _, k := range AnalyzeKinds {
		known = known || k == kind
	}
	if !known {
		return nil, fmt.Errorf("core: unknown analysis %q", kind)
	}
	if threshold <= 0 {
		threshold = analysis.DefaultHotThreshold
	}
	meta := r.Meta()
	rack := topo.Rack{
		NumServers:  meta.NumServers,
		ServerSpeed: meta.ServerSpeed,
		NumUplinks:  meta.NumUplinks,
		UplinkSpeed: meta.UplinkSpeed,
	}
	speedOf := func(port int) uint64 {
		if rack.IsUplink(port) {
			return rack.UplinkSpeed
		}
		return rack.ServerSpeed
	}
	res := &TraceAnalysis{}
	if kind == "markov" {
		// Seed with the empty merge so a trace with no usable series
		// yields the same all-NaN model as MergeMarkov over zero models;
		// per-series models then fold in, which is count-associative and
		// therefore identical to one merge over the collected models.
		res.Markov = stats.MergeMarkov()
	}
	reduce := &traceWindowReduce{kind: kind, threshold: threshold, isUplink: rack.IsUplink, res: res}

	for i := 0; i < meta.Windows; i++ {
		if !r.HasWindow(i) {
			continue
		}
		var err error
		if stream {
			err = analyzeWindowStream(r, i, speedOf, reduce)
		} else {
			err = analyzeWindowBatch(r, i, speedOf, reduce)
		}
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", i, err)
		}
		res.Windows++
	}
	return res, nil
}

// readWindow materializes all samples of one window. O(window size)
// memory — only for the batch-mode oracle and tests; analyses stream.
func readWindow(r *trace.Reader, i int) ([]wire.Sample, error) {
	var samples []wire.Sample
	err := r.IterWindow(i, func(b *wire.Batch) error {
		samples = append(samples, b.Samples...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// analyzeWindowBatch is the materializing path: the original mbanalyze
// logic, with per-window assembly pinned to SortedKeys order. It is the
// oracle the streaming path is tested against.
func analyzeWindowBatch(r *trace.Reader, i int, speedOf func(int) uint64, reduce *traceWindowReduce) error {
	samples, err := readWindow(r, i)
	if err != nil {
		return err
	}
	split := analysis.Split(samples)
	byPort := make(map[analysis.SeriesKey][]analysis.UtilPoint)
	for _, key := range analysis.SortedKeys(split) {
		if key.Kind != asic.KindBytes {
			continue
		}
		series, err := analysis.UtilizationSeries(split[key], speedOf(int(key.Port)))
		if err != nil {
			continue // damaged or too-short series; skip, as mbanalyze always has
		}
		byPort[key] = series
	}
	for _, key := range analysis.SortedKeys(byPort) {
		reduce.addSeries(key, byPort[key])
	}
	return nil
}

// analyzeWindowStream is the bounded-memory path: one pass over the
// window's batches through a SeriesDemux of per-series accumulators.
func analyzeWindowStream(r *trace.Reader, i int, speedOf func(int) uint64, reduce *traceWindowReduce) error {
	type seriesState struct {
		util *analysis.UtilState
		seg  *analysis.BurstSegmenter
		mk   stats.MarkovAcc
		// durations/gaps/utils stage per-series output so a series that
		// later turns out damaged can be skipped whole, like the batch
		// path's continue.
		durations, gaps, utils []float64
		hot                    int
	}
	states := make(map[analysis.SeriesKey]*seriesState)
	demux := analysis.NewSeriesDemux(func(key analysis.SeriesKey) analysis.SampleSink {
		if key.Kind != asic.KindBytes {
			return nil
		}
		st := &seriesState{util: analysis.NewUtilState(speedOf(int(key.Port)))}
		if reduce.kind == "bursts" || reduce.kind == "gaps" {
			st.seg = analysis.NewBurstSegmenter(analysis.SegmenterConfig{HotAbove: reduce.threshold})
		}
		states[key] = st
		return func(s wire.Sample) error {
			p, ok, err := st.util.Feed(s)
			if err != nil {
				// Damaged series are skipped at finalize, not fatal —
				// keep draining (the latched state ignores the rest).
				return nil
			}
			if !ok {
				return nil
			}
			switch reduce.kind {
			case "util":
				st.utils = append(st.utils, p.Util)
			case "markov":
				st.mk.Observe(p.Util > reduce.threshold)
			case "hotshare":
				if p.Util > reduce.threshold {
					st.hot++
				}
			}
			if st.seg != nil {
				if tr, fired := st.seg.Feed(p); fired {
					switch tr.Kind {
					case analysis.SegOpen:
						if tr.HasGap {
							st.gaps = append(st.gaps, float64(tr.Gap)/float64(simclock.Microsecond))
						}
					case analysis.SegClose:
						st.durations = append(st.durations, float64(tr.Burst.Duration())/float64(simclock.Microsecond))
					}
				}
			}
			return nil
		}
	})
	if err := r.IterWindow(i, demux.FeedBatch); err != nil {
		return err
	}
	for _, key := range analysis.SortedKeys(states) {
		st := states[key]
		if st.util.Close() != nil {
			continue // same skip as the batch path
		}
		if st.seg != nil {
			if tr, fired := st.seg.Flush(); fired {
				st.durations = append(st.durations, float64(tr.Burst.Duration())/float64(simclock.Microsecond))
			}
		}
		switch reduce.kind {
		case "bursts":
			reduce.res.Durations = append(reduce.res.Durations, st.durations...)
		case "gaps":
			reduce.res.Gaps = append(reduce.res.Gaps, st.gaps...)
		case "util":
			reduce.res.Utils = append(reduce.res.Utils, st.utils...)
		case "markov":
			reduce.res.Markov = stats.MergeMarkov(reduce.res.Markov, st.mk.Model())
		case "hotshare":
			if reduce.isUplink(int(key.Port)) {
				reduce.res.Share.UplinkHot += st.hot
			} else {
				reduce.res.Share.DownlinkHot += st.hot
			}
		}
	}
	return nil
}
