package core

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"mburst/internal/simclock"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// recordWireBenchWindows records the reference bytes-on-wire workload:
// the Web application polled for the paper's full counter set — every
// port's byte counter and packet-size histogram plus the shared buffer
// peak — at the 25 µs campaign interval. This is the steady agent
// traffic of a full-fidelity collection deployment (Figs 1-10 combined),
// which the wire formats are compared on.
func recordWireBenchWindows(tb testing.TB) [][]wire.Sample {
	tb.Helper()
	cfg := QuickConfig()
	cfg.Servers = 8
	cfg.Windows = 2
	cfg.WindowDur = 100 * simclock.Millisecond
	exp, err := NewExperiment(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	dir := tb.TempDir()
	err = exp.RecordCampaign(context.Background(), workload.Web, dir,
		ByteCampaignInterval, "wire format benchmark", FullCounters())
	if err != nil {
		tb.Fatal(err)
	}
	r, err := trace.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	windows := make([][]wire.Sample, r.Meta().Windows)
	for i := range windows {
		if windows[i], err = readWindow(r, i); err != nil {
			tb.Fatal(err)
		}
		if len(windows[i]) == 0 {
			tb.Fatalf("window %d empty — benchmark is vacuous", i)
		}
	}
	return windows
}

// bytesOnWire streams every window through one client-style connection
// (DefaultBatchSize samples per batch, one codec for the whole stream,
// exactly like collector.Client) and returns the bytes written.
func bytesOnWire(tb testing.TB, windows [][]wire.Sample, f wire.Format) (total int64, batches int) {
	tb.Helper()
	var cw countingDiscard
	w, err := wire.NewWriterFormat(&cw, f)
	if err != nil {
		tb.Fatal(err)
	}
	for _, samples := range windows {
		for off := 0; off < len(samples); off += collectorBatchSize {
			end := off + collectorBatchSize
			if end > len(samples) {
				end = len(samples)
			}
			if err := w.WriteBatch(&wire.Batch{Rack: 1, Epoch: 1, Samples: samples[off:end]}); err != nil {
				tb.Fatal(err)
			}
			batches++
		}
	}
	return cw.n, batches
}

// collectorBatchSize mirrors collector.DefaultBatchSize without importing
// the collector package into the benchmark.
const collectorBatchSize = 2048

type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// encodeStream pre-encodes the whole workload as one stream in format f.
func encodeStream(tb testing.TB, windows [][]wire.Sample, f wire.Format) ([]byte, int) {
	tb.Helper()
	var buf bytes.Buffer
	w, err := wire.NewWriterFormat(&buf, f)
	if err != nil {
		tb.Fatal(err)
	}
	batches := 0
	for _, samples := range windows {
		for off := 0; off < len(samples); off += collectorBatchSize {
			end := off + collectorBatchSize
			if end > len(samples) {
				end = len(samples)
			}
			if err := w.WriteBatch(&wire.Batch{Rack: 1, Epoch: 1, Samples: samples[off:end]}); err != nil {
				tb.Fatal(err)
			}
			batches++
		}
	}
	return buf.Bytes(), batches
}

// drainStream decodes every batch of an encoded stream through a reused
// reader, returning the number of batches and samples seen.
func drainStream(tb testing.TB, r *wire.Reader, src *bytes.Reader, stream []byte) (batches, samples int) {
	src.Reset(stream)
	r.Reset(src)
	for {
		b, err := r.ReadBatch()
		if err == io.EOF {
			return batches, samples
		}
		if err != nil {
			tb.Fatal(err)
		}
		batches++
		samples += len(b.Samples)
	}
}

// TestWireBenchArtifact measures the wire formats on the reference Web
// workload and publishes BENCH_wire.json. Gated on MBURST_WIRE_BENCH_OUT
// so it only runs in the dedicated CI step (alloc counts are meaningless
// under the race detector). Hard gates: MBW3 must put >= 4x fewer bytes
// on the wire than MBW2, and the steady-state encode and ingest paths
// must allocate nothing per batch. The ingest-throughput ceiling is
// recorded alongside for regression tracking.
func TestWireBenchArtifact(t *testing.T) {
	out := os.Getenv("MBURST_WIRE_BENCH_OUT")
	if out == "" {
		t.Skip("MBURST_WIRE_BENCH_OUT not set")
	}
	windows := recordWireBenchWindows(t)
	totalSamples := 0
	for _, w := range windows {
		totalSamples += len(w)
	}

	bytes2, _ := bytesOnWire(t, windows, wire.FormatMBW2)
	bytes3, batches := bytesOnWire(t, windows, wire.FormatMBW3)
	ratio := float64(bytes2) / float64(bytes3)

	// Steady-state encode: the same batch re-encoded through a chained
	// codec, the collector.Client hot path.
	steady := &wire.Batch{Rack: 1, Epoch: 1, Samples: windows[0][:collectorBatchSize]}
	w3, err := wire.NewWriterFormat(io.Discard, wire.FormatMBW3)
	if err != nil {
		t.Fatal(err)
	}
	encodeAllocs := testing.AllocsPerRun(200, func() {
		if err := w3.WriteBatch(steady); err != nil {
			t.Fatal(err)
		}
	})

	// Steady-state ingest: replaying the encoded stream through one
	// reused Reader, the collector.Server hot path.
	stream3, streamBatches := encodeStream(t, windows, wire.FormatMBW3)
	src := bytes.NewReader(stream3)
	r := wire.NewReader(src)
	r.SetReuse(true)
	drainStream(t, r, src, stream3) // warm the scratch buffers
	ingestAllocs := testing.AllocsPerRun(20, func() {
		drainStream(t, r, src, stream3)
	}) / float64(streamBatches)

	// Ingest-throughput ceiling: decoded batches per second at
	// saturation, same path as the alloc measurement.
	reps := 0
	start := time.Now()
	for time.Since(start) < 500*time.Millisecond {
		drainStream(t, r, src, stream3)
		reps++
	}
	elapsed := time.Since(start)
	batchesPerSec := float64(reps*streamBatches) / elapsed.Seconds()
	samplesPerSec := float64(reps*totalSamples) / elapsed.Seconds()

	artifact := struct {
		Name          string  `json:"name"`
		Workload      string  `json:"workload"`
		Samples       int     `json:"samples"`
		Batches       int     `json:"batches"`
		CPUs          int     `json:"cpus"`
		BytesMBW2     int64   `json:"bytes_mbw2"`
		BytesMBW3     int64   `json:"bytes_mbw3"`
		BytesRatio    float64 `json:"bytes_ratio"`
		EncodeAllocs  float64 `json:"encode_allocs_per_op"`
		IngestAllocs  float64 `json:"ingest_allocs_per_op"`
		IngestBatches float64 `json:"ingest_batches_per_sec"`
		IngestSamples float64 `json:"ingest_samples_per_sec"`
	}{
		Name:          "wire_formats",
		Workload:      "web/full-counters/25us",
		Samples:       totalSamples,
		Batches:       batches,
		CPUs:          runtime.NumCPU(),
		BytesMBW2:     bytes2,
		BytesMBW3:     bytes3,
		BytesRatio:    ratio,
		EncodeAllocs:  encodeAllocs,
		IngestAllocs:  ingestAllocs,
		IngestBatches: batchesPerSec,
		IngestSamples: samplesPerSec,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bytes on wire: mbw2 %d B, mbw3 %d B (%.2fx); encode %.2f allocs/op, ingest %.4f allocs/batch, %.0f batches/s",
		bytes2, bytes3, ratio, encodeAllocs, ingestAllocs, batchesPerSec)

	if ratio < 4 {
		t.Errorf("mbw3 only %.2fx below mbw2 on the wire, want >= 4x (mbw2 %d B, mbw3 %d B)",
			ratio, bytes2, bytes3)
	}
	if encodeAllocs != 0 {
		t.Errorf("steady encode allocates %.2f/op, want 0", encodeAllocs)
	}
	if ingestAllocs != 0 {
		t.Errorf("steady ingest allocates %.4f/batch, want 0", ingestAllocs)
	}
}

// BenchmarkWireEncode measures steady-state batch encoding per format.
// Run with:
//
//	go test -run=^$ -bench=BenchmarkWire ./internal/core
func BenchmarkWireEncode(b *testing.B) {
	windows := recordWireBenchWindows(b)
	batch := &wire.Batch{Rack: 1, Epoch: 1, Samples: windows[0][:collectorBatchSize]}
	for _, f := range []wire.Format{wire.FormatMBW2, wire.FormatMBW3} {
		b.Run(f.String(), func(b *testing.B) {
			w, err := wire.NewWriterFormat(io.Discard, f)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.WriteBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireIngest measures steady-state stream decoding per format.
func BenchmarkWireIngest(b *testing.B) {
	windows := recordWireBenchWindows(b)
	for _, f := range []wire.Format{wire.FormatMBW2, wire.FormatMBW3} {
		b.Run(f.String(), func(b *testing.B) {
			stream, batches := encodeStream(b, windows, f)
			src := bytes.NewReader(stream)
			r := wire.NewReader(src)
			r.SetReuse(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batches {
				drainStream(b, r, src, stream)
			}
		})
	}
}
