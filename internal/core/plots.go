package core

import (
	"fmt"
	"strings"

	"mburst/internal/asic"
	"mburst/internal/plot"
	"mburst/internal/stats"
	"mburst/internal/workload"
)

// appSeries converts per-app ECDFs into plot series in display order.
func appSeries(m AppECDF) []plot.Series {
	var out []plot.Series
	for _, app := range workload.Apps {
		if e, ok := m[app]; ok {
			out = append(out, plot.Series{Name: app.String(), ECDF: e})
		}
	}
	return out
}

// FormatPlots renders the report's figures as terminal graphics, closely
// mirroring the paper's visual presentation.
func (r *Report) FormatPlots() string {
	var b strings.Builder

	b.WriteString("Fig 2 — drop time series (each cell is one bin; · = no drops)\n")
	fmt.Fprintf(&b, "  low-util port  (%4.1f%% avg): %s\n", r.Fig2.LowAvg*100, plot.Sparkline(r.Fig2.LowUtil))
	fmt.Fprintf(&b, "  high-util port (%4.1f%% avg): %s\n\n", r.Fig2.HighAvg*100, plot.Sparkline(r.Fig2.HighUtil))

	b.WriteString("Fig 3 — CDF of µburst durations @25µs\n")
	b.WriteString(plot.CDF(plot.CDFConfig{LogX: true, XLabel: "burst duration (µs)"}, appSeries(r.Fig3.Durations)...))
	b.WriteByte('\n')

	b.WriteString("Fig 4 — CDF of inter-burst gaps @25µs\n")
	b.WriteString(plot.CDF(plot.CDFConfig{LogX: true, XLabel: "inter-burst gap (µs)"}, appSeries(r.Fig4.Gaps)...))
	b.WriteByte('\n')

	b.WriteString("Fig 5 — packet-size mix inside bursts (bars: packet-count fraction per bin)\n")
	for _, app := range workload.Apps {
		mix, ok := r.Fig5.Mix[app]
		if !ok {
			continue
		}
		labels := make([]string, asic.NumSizeBins)
		for i := range labels {
			labels[i] = fmt.Sprintf("%s inside  %s", app, asic.SizeBinLabel(i))
		}
		b.WriteString(plot.Bars(labels, mix.Inside.Normalized(), 30))
	}
	b.WriteByte('\n')

	b.WriteString("Fig 6 — CDF of link utilization @25µs\n")
	b.WriteString(plot.CDF(plot.CDFConfig{XLabel: "utilization (fraction of line rate)"}, appSeries(r.Fig6.Utils)...))
	b.WriteByte('\n')

	b.WriteString("Fig 7 — CDF of uplink MAD, egress @40µs\n")
	fine := make(AppECDF)
	for app, c := range r.Fig7.MAD {
		fine[app] = c.EgressFine
	}
	b.WriteString(plot.CDF(plot.CDFConfig{XLabel: "normalized mean absolute deviation"}, appSeries(fine)...))
	b.WriteByte('\n')

	b.WriteString("Fig 8 — server correlation heatmaps @250µs (|r| ramp ' .:-=+*#%@')\n")
	for _, app := range workload.Apps {
		if corr, ok := r.Fig8.Corr[app]; ok {
			fmt.Fprintf(&b, "%s rack:\n%s\n", app, plot.Heatmap(corr))
		}
	}

	b.WriteString("Fig 9 — uplink share of hot ports @300µs\n")
	var labels []string
	var vals []float64
	for _, app := range workload.Apps {
		if s, ok := r.Fig9.Share[app]; ok {
			labels = append(labels, app.String())
			vals = append(vals, s.UplinkShare())
		}
	}
	b.WriteString(plot.Bars(labels, vals, 40))
	b.WriteByte('\n')

	b.WriteString("Fig 10 — normalized peak buffer occupancy vs hot ports\n")
	for _, app := range workload.Apps {
		if box, ok := r.Fig10.Box[app]; ok {
			fmt.Fprintf(&b, "%s rack:\n%s\n", app, plot.Boxplots(coalesceBoxGroups(box, 4), 50))
		}
	}
	return b.String()
}

// coalesceBoxGroups merges hot-port counts into buckets of the given width
// so sparse groups still render as readable boxplots.
func coalesceBoxGroups(box map[int]stats.BoxplotSummary, width int) map[int]stats.BoxplotSummary {
	if width <= 1 {
		return box
	}
	// Re-aggregate medians by bucket using each group's summary values;
	// reconstruct approximate member lists from the five-number summary.
	merged := make(map[int][]float64)
	for k, s := range box {
		bucket := (k / width) * width
		if s.N == 0 {
			continue
		}
		// Representative values: quartiles weighted by N.
		rep := []float64{s.Min, s.Q1, s.Median, s.Q3, s.Max}
		for i := 0; i < s.N; i++ {
			merged[bucket] = append(merged[bucket], rep[i%len(rep)])
		}
	}
	out := make(map[int]stats.BoxplotSummary, len(merged))
	for k, vs := range merged {
		out[k] = stats.Boxplot(vs)
	}
	return out
}
