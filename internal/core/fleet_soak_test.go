package core

// Fleet-scale counterpart of internal/fault's collector-crash soak:
// seeded crash schedules (kill / torn write / fsync lie) strike the
// sharded collection plane mid-campaign, every struck shard resumes
// from its archive + checkpoint, and the merged fleet state must stay
// byte-exact against the single-collector oracle. The summary merges
// into FAULT_soak.json as the "fleet" ledger; TestFleetBenchArtifact
// publishes BENCH_fleet.json (both gated in scripts/ci.sh).

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mburst/internal/collector"
	"mburst/internal/fault"
	"mburst/internal/rng"
	"mburst/internal/workload"
)

// fleetSoakReport is the "fleet" section of FAULT_soak.json.
type fleetSoakReport struct {
	Schedules   int    `json:"schedules"`
	Racks       int    `json:"racks"`
	Shards      int    `json:"shards"`
	Kills       int    `json:"kills"`
	Resumes     int    `json:"resumes"`
	Replayed    uint64 `json:"replayed_batches"`
	Redelivered uint64 `json:"redelivered_batches"`
	Shortfall   uint64 `json:"shortfall_batches"`
	ByteExact   bool   `json:"byte_exact"`
}

// mergeFleetSoakArtifact folds the fleet ledger into the shared
// MBURST_FAULT_OUT artifact without disturbing the sections other soaks
// own (the file is read and rewritten as a generic object).
func mergeFleetSoakArtifact(t *testing.T, report fleetSoakReport) {
	t.Helper()
	out := os.Getenv("MBURST_FAULT_OUT")
	if out == "" {
		return
	}
	doc := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not a soak report: %v", out, err)
		}
	}
	doc["fleet"] = report
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFleetCrashSoak(t *testing.T) {
	const (
		schedules = 6
		racks     = 9
		shards    = 3
	)
	cfg := fleetTestConfig(racks)
	report := fleetSoakReport{
		Schedules: schedules, Racks: racks, Shards: shards, ByteExact: true,
	}
	for seed := uint64(1); seed <= schedules; seed++ {
		sched := fault.Generate(rng.New(seed).Split("fleet"), fault.CrashMix(), cfg.WindowDur)
		e, err := NewExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunFleet(context.Background(), FleetConfig{
			App:             workload.Web,
			Shards:          shards,
			PlacementSeed:   seed,
			BatchSize:       8,
			PublishEvery:    4,
			Dir:             filepath.Join(t.TempDir(), "fleet"),
			CheckpointEvery: 4,
			Oracle:          true,
			Faults:          sched,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sched, err)
		}
		if !res.ByteExact {
			report.ByteExact = false
			t.Errorf("seed %d (%s): fleet state diverges from the oracle after %d kills",
				seed, sched, res.Kills)
		}
		if res.Kills != res.Resumes {
			report.ByteExact = false
			t.Errorf("seed %d (%s): %d kills but %d resumes", seed, sched, res.Kills, res.Resumes)
		}
		report.Kills += res.Kills
		report.Resumes += res.Resumes
		report.Replayed += res.Replayed
		report.Redelivered += res.Redelivered
		report.Shortfall += res.Shortfall
	}
	if report.Kills == 0 {
		t.Error("crash mix struck no shard across every schedule")
	}
	mergeFleetSoakArtifact(t, report)
}

// TestFleetBenchArtifact runs the ISSUE's reference fleet — 1000 racks
// over 8 shards, oracle on — and publishes BENCH_fleet.json: ingest
// throughput, merge wall-clock (composing fleet state from the 8 shard
// checkpoints), bytes fanned in, and the byte-exact verdict CI gates
// on. Gated on MBURST_FLEET_BENCH_OUT to keep ordinary runs fast.
func TestFleetBenchArtifact(t *testing.T) {
	out := os.Getenv("MBURST_FLEET_BENCH_OUT")
	if out == "" {
		t.Skip("MBURST_FLEET_BENCH_OUT not set")
	}
	const (
		racks  = 1000
		shards = 8
	)
	cfg := fleetTestConfig(racks)
	e, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "fleet")
	start := time.Now()
	res, err := e.RunFleet(context.Background(), FleetConfig{
		App:           workload.Web,
		Shards:        shards,
		PlacementSeed: 1,
		Dir:           dir,
		Oracle:        true,
		Notes:         "bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !res.ByteExact {
		t.Error("1000-rack fleet diverges from the single-collector oracle")
	}

	// Merge latency: rebuild the fleet-wide state from the 8 persisted
	// shard checkpoints — the aggregation tier's recovery-path merge.
	st, ok, err := collector.LoadFleetCheckpoint(filepath.Join(dir, FleetCheckpointName))
	if err != nil || !ok {
		t.Fatalf("fleet checkpoint: ok=%v err=%v", ok, err)
	}
	mergeStart := time.Now()
	merged, err := st.FleetState()
	if err != nil {
		t.Fatal(err)
	}
	mergeWall := time.Since(mergeStart)
	if merged.Ingest.Samples != res.Fleet.Ingest.Samples {
		t.Errorf("checkpoint merge ingested %d samples, campaign %d",
			merged.Ingest.Samples, res.Fleet.Ingest.Samples)
	}

	artifact := struct {
		Name        string  `json:"name"`
		Racks       int     `json:"racks"`
		Shards      int     `json:"shards"`
		CPUs        int     `json:"cpus"`
		Batches     uint64  `json:"batches"`
		Samples     uint64  `json:"samples"`
		WireBytes   uint64  `json:"wire_bytes"`
		ElapsedMs   float64 `json:"elapsed_ms"`
		RacksPerSec float64 `json:"racks_per_sec"`
		MergeMs     float64 `json:"merge_ms"`
		ByteExact   bool    `json:"byte_exact"`
	}{
		Name:        "fleet_campaign",
		Racks:       racks,
		Shards:      shards,
		CPUs:        runtime.NumCPU(),
		Batches:     res.Batches,
		Samples:     res.Samples,
		WireBytes:   res.WireBytes,
		ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		RacksPerSec: float64(racks) / elapsed.Seconds(),
		MergeMs:     float64(mergeWall.Microseconds()) / 1000,
		ByteExact:   res.ByteExact,
	}
	// Throughput/latency floors, deliberately generous: a CI runner must
	// sustain >= 50 racks/sec and merge the fleet checkpoint in < 5 s —
	// an order of magnitude of headroom over measured dev-box numbers
	// (~1400 racks/sec, sub-millisecond merge), while still catching a
	// collapse of either path.
	if artifact.RacksPerSec < 50 {
		t.Errorf("fleet ingest collapsed: %.1f racks/sec", artifact.RacksPerSec)
	}
	if mergeWall > 5*time.Second {
		t.Errorf("fleet merge collapsed: %v", mergeWall)
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d racks / %d shards in %v (%.1f racks/sec), merge %v, %d wire bytes",
		racks, shards, elapsed.Round(time.Millisecond), artifact.RacksPerSec,
		mergeWall, res.WireBytes)
}
