package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/workload"
)

// AppECDF holds one empirical distribution per application class.
type AppECDF map[workload.App]*stats.ECDF

// perCell groups a cell's reduced result with the app that produced it, so
// multi-app campaign grids can be re-aggregated per app after a single
// parallel run.
type perCell[T any] struct {
	app workload.App
	v   T
}

// appGrid builds the rack-major campaign grid for every application class
// with one shared plan — the layout most figures fan out over.
func (e *Experiment) appGrid(plan CounterPlan, interval simclock.Duration) []Cell {
	return e.campaignCells(workload.Apps[:], plan, interval, 0)
}

// downlinkCounters returns every ToR→server counter of the given kinds.
func downlinkCounters(servers int, kinds ...asic.CounterKind) CounterPlan {
	return func(_ topo.Rack, _, _ int) []collector.CounterSpec {
		var out []collector.CounterSpec
		for s := 0; s < servers; s++ {
			for _, k := range kinds {
				out = append(out, collector.CounterSpec{Port: s, Dir: asic.TX, Kind: k})
			}
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Fig 1 — drop rate vs. utilization scatter at SNMP granularity.

// Fig1Result is the drop/utilization scatter and its headline correlation
// coefficient (the paper reports 0.098).
type Fig1Result struct {
	Points      []analysis.CoarsePoint
	Correlation float64
}

// Fig1DropUtilScatter samples every downlink of every rack-window pair at
// coarse (SNMP-like) granularity: one (utilization, drop-rate) point per
// ToR-server link per window, mirroring Fig 1's methodology of hourly
// sub-sampled 4-minute windows.
func (e *Experiment) Fig1DropUtilScatter(ctx context.Context) (Fig1Result, error) {
	var res Fig1Result
	coarse := e.cfg.WindowDur / 5
	if coarse <= 0 {
		coarse = simclock.Millisecond
	}
	cells := e.appGrid(downlinkCounters(e.cfg.Servers, asic.KindBytes, asic.KindDrops), coarse)
	pts, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) ([]analysis.CoarsePoint, error) {
		// SNMP-style windows only read counter endpoints, so the
		// streaming reduction retains two samples per series instead of
		// the window.
		bytesEnd := make([]analysis.SeriesEndpoints, e.cfg.Servers)
		dropsEnd := make([]analysis.SeriesEndpoints, e.cfg.Servers)
		for _, s := range run.Samples {
			if s.Dir != asic.TX || int(s.Port) >= e.cfg.Servers {
				continue
			}
			switch s.Kind {
			case asic.KindBytes:
				bytesEnd[s.Port].Add(s)
			case asic.KindDrops:
				dropsEnd[s.Port].Add(s)
			}
		}
		var out []analysis.CoarsePoint
		for s := 0; s < e.cfg.Servers; s++ {
			pt, err := analysis.CoarseWindow(bytesEnd[s].Slice(), dropsEnd[s].Slice(), run.Net.Switch().Port(s).Speed())
			if err != nil {
				continue // window too short for this port; skip
			}
			out = append(out, pt)
		}
		return out, nil
	})
	if err != nil {
		return res, err
	}
	for _, p := range pts {
		res.Points = append(res.Points, p...)
	}
	res.Correlation = analysis.DropUtilCorrelation(res.Points)
	return res, nil
}

// Format renders the Fig 1 summary.
func (r Fig1Result) Format() string {
	var drops int
	for _, p := range r.Points {
		if p.DropRate > 0 {
			drops++
		}
	}
	return fmt.Sprintf("Fig 1: %d port-windows, %d with drops; corr(util, drop rate) = %.3f (paper: 0.098)",
		len(r.Points), drops, r.Correlation)
}

// ---------------------------------------------------------------------------
// Fig 2 — drop time series on a low- and a high-utilization port.

// Fig2Result holds per-bin drop counts for two contrasting ports.
type Fig2Result struct {
	BinDur    simclock.Duration
	LowUtil   []uint64 // web-like port, ~low average utilization
	HighUtil  []uint64 // hadoop-like port, ~high average utilization
	LowStats  analysis.Burstiness
	HighStats analysis.Burstiness
	LowAvg    float64
	HighAvg   float64
}

// Fig2DropTimeSeries records a continuous run on every downlink of a Web
// rack and a Hadoop rack, picks the port with the most congestion
// discards from each (the paper: "We chose two switch ports that were
// experiencing congestion drops"), and bins their drops, reproducing
// Fig 2's "drops occur in bursts, often lasting less than the measurement
// granularity".
func (e *Experiment) Fig2DropTimeSeries(ctx context.Context) (Fig2Result, error) {
	res := Fig2Result{BinDur: e.cfg.WindowDur / 20}
	if res.BinDur <= 0 {
		res.BinDur = simclock.Millisecond
	}
	type port struct {
		bins  []uint64
		stats analysis.Burstiness
		avg   float64
	}
	// Drops are overwhelmingly in the ToR→server direction (§4.2: ~90%),
	// so watch every downlink and keep the one that drops the most. Fig 2
	// is a continuous time series (12 h in the paper), not a windowed
	// campaign; run 4× the standard window so rare drop events on the
	// low-utilization port are observable.
	plan := downlinkCounters(e.cfg.Servers, asic.KindDrops, asic.KindBytes)
	cells := []Cell{
		{App: workload.Web, Plan: plan, Interval: res.BinDur / 4, Duration: 4 * e.cfg.WindowDur},
		{App: workload.Hadoop, Plan: plan, Interval: res.BinDur / 4, Duration: 4 * e.cfg.WindowDur},
	}
	ports, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (port, error) {
		// The best (most-dropping) port is only known at end of stream, so
		// every port streams into O(bins) state — drop endpoints for the
		// ranking, growable drop bins, and a running utilization mean —
		// and the chosen port's accumulators are finalized afterwards.
		servers := e.cfg.Servers
		dropEnds := make([]analysis.SeriesEndpoints, servers)
		dropBins := make([]*analysis.DropBinAcc, servers)
		utils := make([]*analysis.UtilState, servers)
		moments := make([]stats.MomentAcc, servers)
		for s := 0; s < servers; s++ {
			acc, err := analysis.NewDropBinAcc(res.BinDur)
			if err != nil {
				return port{}, err
			}
			dropBins[s] = acc
			utils[s] = analysis.NewUtilState(run.Net.Switch().Port(s).Speed())
		}
		for _, s := range run.Samples {
			if s.Dir != asic.TX || int(s.Port) >= servers {
				continue
			}
			switch s.Kind {
			case asic.KindDrops:
				dropEnds[s.Port].Add(s)
				// Errors latch per port; only the chosen port's surface.
				_ = dropBins[s.Port].Add(s)
			case asic.KindBytes:
				if p, ok, _ := utils[s.Port].Feed(s); ok {
					moments[s.Port].Add(p.Util)
				}
			}
		}
		best, bestDrops := 0, uint64(0)
		for s := 0; s < servers; s++ {
			if dropEnds[s].Count < 2 {
				continue
			}
			if d := dropEnds[s].Last.Value - dropEnds[s].First.Value; d > bestDrops {
				best, bestDrops = s, d
			}
		}
		bins, err := dropBins[best].Bins()
		if err != nil {
			return port{}, err
		}
		if err := utils[best].Close(); err != nil {
			return port{}, err
		}
		return port{bins: bins, stats: analysis.DropBurstiness(bins), avg: moments[best].Mean()}, nil
	})
	if err != nil {
		return res, err
	}
	res.LowUtil, res.LowStats, res.LowAvg = ports[0].bins, ports[0].stats, ports[0].avg
	res.HighUtil, res.HighStats, res.HighAvg = ports[1].bins, ports[1].stats, ports[1].avg
	return res, nil
}

// Format renders the Fig 2 summary.
func (r Fig2Result) Format() string {
	return fmt.Sprintf(
		"Fig 2: low-util port (%.1f%% avg): %d drops, %.0f%% of bins empty, top bin %.0f%%\n"+
			"       high-util port (%.1f%% avg): %d drops, %.0f%% of bins empty, top bin %.0f%%",
		r.LowAvg*100, r.LowStats.Total, r.LowStats.ZeroBins*100, r.LowStats.TopBinShare*100,
		r.HighAvg*100, r.HighStats.Total, r.HighStats.ZeroBins*100, r.HighStats.TopBinShare*100)
}

// ---------------------------------------------------------------------------
// Table 1 — sampling interval vs. missed-interval rate.

// Table1Row is one interval's measured sampling loss.
type Table1Row struct {
	Interval simclock.Duration
	MissRate float64
}

// Table1Result reproduces the §4.1 byte-counter loss table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1SamplingLoss measures the byte-counter miss rate at the paper's
// three intervals (plus context points) against a live Web rack.
func (e *Experiment) Table1SamplingLoss(ctx context.Context) (Table1Result, error) {
	var res Table1Result
	plan := func(topo.Rack, int, int) []collector.CounterSpec {
		return []collector.CounterSpec{{Port: 0, Dir: asic.TX, Kind: asic.KindBytes}}
	}
	var cells []Cell
	for _, us := range []int64{1, 10, 25, 50, 100} {
		cells = append(cells, Cell{App: workload.Web, Plan: plan, Interval: simclock.Micros(us)})
	}
	rows, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (Table1Row, error) {
		return Table1Row{Interval: run.Cell.Interval, MissRate: run.MissRate}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Format renders Table 1.
func (r Table1Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 1: sampling interval vs. missed intervals (paper: 1µs→100%, 10µs→~10%, 25µs→~1%)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8v  %6.2f%%\n", row.Interval, row.MissRate*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 3 / Fig 4 / Table 2 / Fig 6 — single-counter byte campaigns.

// Fig3Result is the µburst duration CDF per application.
type Fig3Result struct {
	Durations AppECDF
}

// Fig3BurstDurations runs the 25 µs byte campaigns and extracts burst
// durations, streaming each window through a BurstSegmenter so only the
// closed bursts are retained.
func (e *Experiment) Fig3BurstDurations(ctx context.Context) (Fig3Result, error) {
	res := Fig3Result{Durations: make(AppECDF)}
	for _, app := range workload.Apps {
		st, err := e.StreamByteStats(ctx, app, 0, ByteWant{Durations: true})
		if err != nil {
			return res, err
		}
		res.Durations[app] = stats.NewECDF(st.Durations)
	}
	return res, nil
}

// Format renders the Fig 3 summary rows.
func (r Fig3Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 3: µburst duration CDF @25µs (paper: p90 ≤ 200µs all apps; web p90 = 50µs)\n")
	for _, app := range workload.Apps {
		e := r.Durations[app]
		if e == nil || e.N() == 0 {
			fmt.Fprintf(&b, "  %-7s no bursts observed\n", app)
			continue
		}
		fmt.Fprintf(&b, "  %-7s n=%-6d p50=%6.0fµs p90=%6.0fµs p99=%6.0fµs max=%6.0fµs ≤1period=%.0f%%\n",
			app, e.N(), e.Quantile(0.5), e.Quantile(0.9), e.Quantile(0.99), e.Max(),
			e.At(float64(ByteCampaignInterval.Microseconds()))*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Fig4Result is the inter-burst gap CDF per application plus the Poisson
// goodness-of-fit rejection (§5.2).
type Fig4Result struct {
	Gaps AppECDF
	KS   map[workload.App]stats.KSResult
}

// Fig4InterBurstGaps runs byte campaigns and extracts inter-burst gaps,
// emitted by the BurstSegmenter as each following burst arms.
func (e *Experiment) Fig4InterBurstGaps(ctx context.Context) (Fig4Result, error) {
	res := Fig4Result{Gaps: make(AppECDF), KS: make(map[workload.App]stats.KSResult)}
	for _, app := range workload.Apps {
		st, err := e.StreamByteStats(ctx, app, 0, ByteWant{Gaps: true})
		if err != nil {
			return res, err
		}
		res.Gaps[app] = stats.NewECDF(st.Gaps)
		res.KS[app] = analysis.PoissonTest(st.Gaps)
	}
	return res, nil
}

// Format renders the Fig 4 summary rows.
func (r Fig4Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 4: inter-burst gap CDF @25µs (paper: 40% of web/cache gaps <100µs; long tail; Poisson rejected)\n")
	for _, app := range workload.Apps {
		e := r.Gaps[app]
		if e == nil || e.N() == 0 {
			fmt.Fprintf(&b, "  %-7s no gaps observed\n", app)
			continue
		}
		ks := r.KS[app]
		fmt.Fprintf(&b, "  %-7s n=%-6d <100µs=%.0f%% p50=%8.0fµs p99=%10.0fµs KS D=%.3f p=%.2g poisson-rejected=%v\n",
			app, e.N(), e.At(100)*100, e.Quantile(0.5), e.Quantile(0.99), ks.D, ks.PValue, ks.Rejects(0.001))
	}
	return strings.TrimRight(b.String(), "\n")
}

// Table2Result is the two-state Markov model per application.
type Table2Result struct {
	Models map[workload.App]stats.MarkovModel
}

// Table2BurstMarkov fits the burst Markov chains from streaming
// transition counts (one MarkovAcc per window, merged across windows).
func (e *Experiment) Table2BurstMarkov(ctx context.Context) (Table2Result, error) {
	res := Table2Result{Models: make(map[workload.App]stats.MarkovModel)}
	for _, app := range workload.Apps {
		st, err := e.StreamByteStats(ctx, app, 0, ByteWant{Markov: true})
		if err != nil {
			return res, err
		}
		res.Models[app] = st.Markov
	}
	return res, nil
}

// Format renders Table 2.
func (r Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 2: burst Markov model (paper ratios: web 119.7, cache 45.1, hadoop 15.6)\n")
	for _, app := range workload.Apps {
		m, ok := r.Models[app]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-7s p(1|0)=%.4f p(1|1)=%.4f likelihood ratio r=%.1f stationary-hot=%.2f%%\n",
			app, m.P[0][1], m.P[1][1], m.LikelihoodRatio(), m.StationaryHotFraction()*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Fig6Result is the link-utilization CDF per application.
type Fig6Result struct {
	Utils   AppECDF
	HotFrac map[workload.App]float64
}

// Fig6UtilizationCDF runs byte campaigns and collects utilization
// samples, counting hot samples inline.
func (e *Experiment) Fig6UtilizationCDF(ctx context.Context) (Fig6Result, error) {
	res := Fig6Result{Utils: make(AppECDF), HotFrac: make(map[workload.App]float64)}
	for _, app := range workload.Apps {
		st, err := e.StreamByteStats(ctx, app, 0, ByteWant{Utils: true})
		if err != nil {
			return res, err
		}
		res.Utils[app] = stats.NewECDF(st.Utils)
		if len(st.Utils) > 0 {
			res.HotFrac[app] = float64(st.HotSamples) / float64(len(st.Utils))
		}
	}
	return res, nil
}

// Format renders the Fig 6 summary rows.
func (r Fig6Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 6: utilization CDF @25µs (paper: long-tailed; hadoop hot ~15% incl. ~10% near 100%)\n")
	for _, app := range workload.Apps {
		e := r.Utils[app]
		if e == nil || e.N() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-7s n=%-7d p50=%5.1f%% p90=%5.1f%% p99=%5.1f%% hot(>50%%)=%5.2f%% ≥95%%=%5.2f%%\n",
			app, e.N(), e.Quantile(0.5)*100, e.Quantile(0.9)*100, e.Quantile(0.99)*100,
			r.HotFrac[app]*100, (1-e.At(0.95))*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 5 — packet sizes inside/outside bursts.

// Fig5Result is the inside/outside packet-size mix per application.
type Fig5Result struct {
	Mix map[workload.App]analysis.PacketMixResult
}

// Fig5PacketSizes polls byte + size-bin counters together at 100 µs (the
// §5.3 methodology) on random ports and classifies periods by utilization.
func (e *Experiment) Fig5PacketSizes(ctx context.Context) (Fig5Result, error) {
	res := Fig5Result{Mix: make(map[workload.App]analysis.PacketMixResult)}
	interval := 100 * simclock.Microsecond
	var cells []Cell
	for _, app := range workload.Apps {
		app := app
		plan := func(_ topo.Rack, rackID, window int) []collector.CounterSpec {
			port := e.randomPort(app, rackID, window)
			return []collector.CounterSpec{
				{Port: port, Dir: asic.TX, Kind: asic.KindBytes},
				{Port: port, Dir: asic.TX, Kind: asic.KindSizeBins},
			}
		}
		cells = append(cells, e.campaignCells([]workload.App{app}, plan, interval, 0)...)
	}
	mixes, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[analysis.PacketMixResult], error) {
		c := run.Cell
		port := e.randomPort(c.App, c.RackID, c.Window)
		// The cell polls exactly one port's byte + size-bin counters, so a
		// single PacketMixAcc consumes the interleaved stream directly.
		mix := analysis.NewPacketMixAcc(run.Net.Switch().Port(port).Speed(), e.threshold())
		for _, s := range run.Samples {
			if int(s.Port) != port || s.Dir != asic.TX {
				continue
			}
			mix.Feed(s)
		}
		m, err := mix.Result()
		if err != nil {
			return perCell[analysis.PacketMixResult]{}, fmt.Errorf("fig5: %w", err)
		}
		return perCell[analysis.PacketMixResult]{app: c.App, v: m}, nil
	})
	if err != nil {
		return res, err
	}
	for _, m := range mixes {
		agg, ok := res.Mix[m.app]
		if !ok {
			agg = analysis.PacketMixResult{Inside: analysis.NewSizeHistogram(), Outside: analysis.NewSizeHistogram()}
		}
		agg.Inside.Merge(m.v.Inside)
		agg.Outside.Merge(m.v.Outside)
		agg.InsidePeriods += m.v.InsidePeriods
		agg.OutsidePeriods += m.v.OutsidePeriods
		res.Mix[m.app] = agg
	}
	return res, nil
}

// Format renders the Fig 5 histograms.
func (r Fig5Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 5: packet-size mix inside/outside bursts (paper: large-pkt share rises inside; web +60%, cache +20%, hadoop slight)\n")
	for _, app := range workload.Apps {
		mix, ok := r.Mix[app]
		if !ok {
			continue
		}
		in := mix.Inside.Normalized()
		out := mix.Outside.Normalized()
		fmt.Fprintf(&b, "  %-7s inside (n=%d periods): ", app, mix.InsidePeriods)
		for i := 0; i < asic.NumSizeBins; i++ {
			fmt.Fprintf(&b, "%s=%.2f ", asic.SizeBinLabel(i), in[i])
		}
		fmt.Fprintf(&b, "\n          outside (n=%d periods): ", mix.OutsidePeriods)
		for i := 0; i < asic.NumSizeBins; i++ {
			fmt.Fprintf(&b, "%s=%.2f ", asic.SizeBinLabel(i), out[i])
		}
		fmt.Fprintf(&b, "\n          large-packet shift inside vs outside: %+.0f%%\n", mix.LargeShift()*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 7 — uplink load-balance MAD.

// Fig7Curves holds the four CDFs for one application.
type Fig7Curves struct {
	EgressFine    *stats.ECDF // 40 µs
	EgressCoarse  *stats.ECDF // 1 s-equivalent (WindowDur-scaled)
	IngressFine   *stats.ECDF
	IngressCoarse *stats.ECDF
}

// Fig7Result maps applications to their MAD curves.
type Fig7Result struct {
	MAD map[workload.App]Fig7Curves
	// CoarseBin is the "1 s" rebin width used (scaled to the window).
	CoarseBin simclock.Duration
}

// Fig7UplinkMAD polls all four uplinks (both directions) at 40 µs and
// computes the normalized mean absolute deviation per sampling period,
// plus a coarse rebin: the paper's contrast between 40 µs imbalance and
// 1 s balance.
func (e *Experiment) Fig7UplinkMAD(ctx context.Context) (Fig7Result, error) {
	rack := e.Rack()
	res := Fig7Result{MAD: make(map[workload.App]Fig7Curves)}
	// The paper contrasts 40µs with 1s; a scaled window may be shorter
	// than 1s, so coarse means the whole window, capped at 1s.
	res.CoarseBin = e.cfg.WindowDur
	if res.CoarseBin > simclock.Second {
		res.CoarseBin = simclock.Second
	}
	interval := 40 * simclock.Microsecond
	plan := func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		var out []collector.CounterSpec
		for u := 0; u < rack.NumUplinks; u++ {
			out = append(out,
				collector.CounterSpec{Port: rack.UplinkPort(u), Dir: asic.TX, Kind: asic.KindBytes},
				collector.CounterSpec{Port: rack.UplinkPort(u), Dir: asic.RX, Kind: asic.KindBytes},
			)
		}
		return out
	}
	type mads struct{ egFine, egCoarse, inFine, inCoarse []float64 }
	cells := e.appGrid(plan, interval)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[mads], error) {
		// One streaming state per (uplink, direction): the utilization
		// converter, the fine points (MAD needs the aligned matrix), and a
		// coarse rebinner filling in one pass.
		type side struct {
			st     *analysis.UtilState
			points []analysis.UtilPoint
			coarse *analysis.RebinAcc
		}
		newSides := func() []*side {
			out := make([]*side, rack.NumUplinks)
			for u := range out {
				out[u] = &side{
					st:     analysis.NewUtilState(rack.UplinkSpeed),
					coarse: analysis.NewRebinAcc(res.CoarseBin),
				}
			}
			return out
		}
		egress, ingress := newSides(), newSides()
		uplinkOf := make(map[uint16]int, rack.NumUplinks)
		for u := 0; u < rack.NumUplinks; u++ {
			uplinkOf[uint16(rack.UplinkPort(u))] = u
		}
		for _, s := range run.Samples {
			if s.Kind != asic.KindBytes {
				continue
			}
			u, ok := uplinkOf[s.Port]
			if !ok {
				continue
			}
			var sd *side
			switch s.Dir {
			case asic.TX:
				sd = egress[u]
			case asic.RX:
				sd = ingress[u]
			default:
				continue
			}
			if p, ok, _ := sd.st.Feed(s); ok {
				sd.points = append(sd.points, p)
				sd.coarse.Add(p)
			}
		}
		// Collect surviving uplinks in index order, skipping errored series
		// exactly as the batch path skipped failed UtilizationSeries calls.
		collect := func(sides []*side) (fine, coarse [][]analysis.UtilPoint) {
			for _, sd := range sides {
				if sd.st.Close() != nil {
					continue
				}
				fine = append(fine, sd.points)
				coarse = append(coarse, sd.coarse.Points())
			}
			return fine, coarse
		}
		egFine, egCoarse := collect(egress)
		inFine, inCoarse := collect(ingress)
		return perCell[mads]{app: run.Cell.App, v: mads{
			egFine:   analysis.UplinkMAD(egFine),
			inFine:   analysis.UplinkMAD(inFine),
			egCoarse: analysis.UplinkMAD(egCoarse),
			inCoarse: analysis.UplinkMAD(inCoarse),
		}}, nil
	})
	if err != nil {
		return res, err
	}
	for _, app := range workload.Apps {
		var m mads
		for _, w := range wins {
			if w.app != app {
				continue
			}
			m.egFine = append(m.egFine, w.v.egFine...)
			m.egCoarse = append(m.egCoarse, w.v.egCoarse...)
			m.inFine = append(m.inFine, w.v.inFine...)
			m.inCoarse = append(m.inCoarse, w.v.inCoarse...)
		}
		res.MAD[app] = Fig7Curves{
			EgressFine:    stats.NewECDF(m.egFine),
			EgressCoarse:  stats.NewECDF(m.egCoarse),
			IngressFine:   stats.NewECDF(m.inFine),
			IngressCoarse: stats.NewECDF(m.inCoarse),
		}
	}
	return res, nil
}

// Format renders the Fig 7 summary rows.
func (r Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: uplink MAD (paper: median >25%% @40µs, hadoop p90 ≈100%%; balanced at 1s; ingress ≈ egress)\n")
	for _, app := range workload.Apps {
		c, ok := r.MAD[app]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-7s egress @40µs p50=%5.1f%% p90=%6.1f%%   egress @%v p50=%5.1f%%\n",
			app, c.EgressFine.Quantile(0.5)*100, c.EgressFine.Quantile(0.9)*100,
			r.CoarseBin, c.EgressCoarse.Quantile(0.5)*100)
		fmt.Fprintf(&b, "          ingress @40µs p50=%5.1f%% p90=%6.1f%%   ingress @%v p50=%5.1f%%\n",
			c.IngressFine.Quantile(0.5)*100, c.IngressFine.Quantile(0.9)*100,
			r.CoarseBin, c.IngressCoarse.Quantile(0.5)*100)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 8 — server correlation heatmap.

// Fig8Result is the per-app server correlation structure.
type Fig8Result struct {
	Corr map[workload.App][][]float64
	// MeanOffDiag is the average |r| across server pairs.
	MeanOffDiag map[workload.App]float64
	// BlockScore is within-group minus across-group mean correlation for
	// the app's known group structure (cache), 0 for ungrouped apps.
	BlockScore map[workload.App]float64
}

// Fig8ServerCorrelation polls every downlink at 250 µs (ToR→server) and
// computes the Pearson matrix.
func (e *Experiment) Fig8ServerCorrelation(ctx context.Context) (Fig8Result, error) {
	res := Fig8Result{
		Corr:        make(map[workload.App][][]float64),
		MeanOffDiag: make(map[workload.App]float64),
		BlockScore:  make(map[workload.App]float64),
	}
	interval := 250 * simclock.Microsecond
	// One representative rack-window per app: a heatmap is per-rack in the
	// paper ("three representative racks").
	var cells []Cell
	for _, app := range workload.Apps {
		cells = append(cells, Cell{
			App: app, Plan: downlinkCounters(e.cfg.Servers, asic.KindBytes), Interval: interval,
		})
	}
	corrs, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) ([][]float64, error) {
		states := make([]*analysis.UtilState, e.cfg.Servers)
		points := make([][]analysis.UtilPoint, e.cfg.Servers)
		for s := 0; s < e.cfg.Servers; s++ {
			states[s] = analysis.NewUtilState(run.Net.Switch().Port(s).Speed())
		}
		for _, s := range run.Samples {
			if s.Kind != asic.KindBytes || s.Dir != asic.TX || int(s.Port) >= e.cfg.Servers {
				continue
			}
			if p, ok, _ := states[s.Port].Feed(s); ok {
				points[s.Port] = append(points[s.Port], p)
			}
		}
		for s := 0; s < e.cfg.Servers; s++ {
			if err := states[s].Close(); err != nil {
				return nil, err
			}
		}
		return analysis.ServerCorrelation(points), nil
	})
	if err != nil {
		return res, err
	}
	for i, app := range workload.Apps {
		corr := corrs[i]
		res.Corr[app] = corr

		var sum float64
		var n int
		for i := range corr {
			for j := i + 1; j < len(corr); j++ {
				if v := corr[i][j]; v == v {
					if v < 0 {
						v = -v
					}
					sum += v
					n++
				}
			}
		}
		if n > 0 {
			res.MeanOffDiag[app] = sum / float64(n)
		}

		params := e.cfg.params(app)
		if params.GroupCount > 0 && params.GroupSpan > 0 {
			groupOf := make([]int, e.cfg.Servers)
			for s := range groupOf {
				groupOf[s] = (s / params.GroupSpan) % params.GroupCount
			}
			res.BlockScore[app] = analysis.GroupBlockScore(corr, groupOf)
		}
	}
	return res, nil
}

// Format renders the Fig 8 summary rows.
func (r Fig8Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 8: server correlation @250µs (paper: web ≈ 0, hadoop modest, cache strong subsets)\n")
	for _, app := range workload.Apps {
		if _, ok := r.Corr[app]; !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-7s mean |pairwise r| = %.3f", app, r.MeanOffDiag[app])
		if score, ok := r.BlockScore[app]; ok && score != 0 {
			fmt.Fprintf(&b, "  group block score = %.3f (within-group − across-group)", score)
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 9 — hot-port directionality.

// Fig9Result is the uplink/downlink hot-sample split per application.
type Fig9Result struct {
	Share map[workload.App]analysis.HotShare
}

// Fig9HotPortShare polls every port at 300 µs and classifies hot samples.
func (e *Experiment) Fig9HotPortShare(ctx context.Context) (Fig9Result, error) {
	rack := e.Rack()
	res := Fig9Result{Share: make(map[workload.App]analysis.HotShare)}
	interval := 300 * simclock.Microsecond
	cells := e.appGrid(AllPortCounters(false), interval)
	shares, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[analysis.HotShare], error) {
		ports := rack.NumPorts()
		states, err := portStates(run, ports)
		if err != nil {
			return perCell[analysis.HotShare]{}, err
		}
		hot := make([]int, ports)
		for _, s := range run.Samples {
			if s.Kind != asic.KindBytes || s.Dir != asic.TX || int(s.Port) >= ports {
				continue
			}
			if p, ok, _ := states[s.Port].Feed(s); ok && p.Util > e.threshold() {
				hot[s.Port]++
			}
		}
		if err := closePortStates(states); err != nil {
			return perCell[analysis.HotShare]{}, err
		}
		var share analysis.HotShare
		for p := 0; p < ports; p++ {
			if rack.IsUplink(p) {
				share.UplinkHot += hot[p]
			} else {
				share.DownlinkHot += hot[p]
			}
		}
		return perCell[analysis.HotShare]{app: run.Cell.App, v: share}, nil
	})
	if err != nil {
		return res, err
	}
	for _, s := range shares {
		share := res.Share[s.app]
		share.UplinkHot += s.v.UplinkHot
		share.DownlinkHot += s.v.DownlinkHot
		res.Share[s.app] = share
	}
	return res, nil
}

// portStates builds one streaming utilization converter per port of a cell
// that polled every port's byte counter (the Fig 9/10 plans).
func portStates(run *CellRun, ports int) ([]*analysis.UtilState, error) {
	states := make([]*analysis.UtilState, ports)
	for p := 0; p < ports; p++ {
		states[p] = analysis.NewUtilState(run.Net.Switch().Port(p).Speed())
	}
	return states, nil
}

// closePortStates finalizes every port's converter, returning the first
// error in port order — the same precedence the batch per-port loop had.
func closePortStates(states []*analysis.UtilState) error {
	for _, st := range states {
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the Fig 9 summary rows.
func (r Fig9Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 9: hot-port direction @300µs (paper: hadoop uplink share 18%, web lower; cache majority uplink)\n")
	for _, app := range workload.Apps {
		s, ok := r.Share[app]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-7s uplink share of hot samples = %.0f%% (%d uplink / %d downlink)\n",
			app, s.UplinkShare()*100, s.UplinkHot, s.DownlinkHot)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Fig 10 — buffer occupancy vs. hot ports.

// Fig10Result is the per-app buffer/hot-port relationship.
type Fig10Result struct {
	Box        map[workload.App]map[int]stats.BoxplotSummary
	MaxHotFrac map[workload.App]float64
	// MeanPeakLow/High summarize the normalized occupancy at low (≤2) and
	// high (top quartile) hot-port counts, quantifying the scaling claim.
	MeanPeakLow  map[workload.App]float64
	MeanPeakHigh map[workload.App]float64
}

// Fig10BufferOccupancy polls all ports' byte counters plus the shared
// buffer's peak register at 300 µs and groups 50 ms-scaled windows by the
// number of hot ports.
func (e *Experiment) Fig10BufferOccupancy(ctx context.Context) (Fig10Result, error) {
	rack := e.Rack()
	res := Fig10Result{
		Box:          make(map[workload.App]map[int]stats.BoxplotSummary),
		MaxHotFrac:   make(map[workload.App]float64),
		MeanPeakLow:  make(map[workload.App]float64),
		MeanPeakHigh: make(map[workload.App]float64),
	}
	interval := 300 * simclock.Microsecond
	// The paper groups by 50 ms spans; scale the span down with the
	// window so each window still contributes several spans.
	window := e.cfg.WindowDur / 12
	if window > 50*simclock.Millisecond {
		window = 50 * simclock.Millisecond
	}
	if window < simclock.Millisecond {
		window = simclock.Millisecond
	}
	cells := e.appGrid(AllPortCounters(true), interval)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[[]analysis.BufferWindow], error) {
		ports := rack.NumPorts()
		acc, err := analysis.NewBufferWindowAcc(window, e.threshold())
		if err != nil {
			return perCell[[]analysis.BufferWindow]{}, err
		}
		states, err := portStates(run, ports)
		if err != nil {
			return perCell[[]analysis.BufferWindow]{}, err
		}
		for _, s := range run.Samples {
			if s.Kind == asic.KindBufferPeak {
				acc.ObservePeak(s)
				continue
			}
			if s.Kind != asic.KindBytes || s.Dir != asic.TX || int(s.Port) >= ports {
				continue
			}
			if p, ok, _ := states[s.Port].Feed(s); ok {
				acc.ObserveUtil(int(s.Port), p)
			}
		}
		if err := closePortStates(states); err != nil {
			return perCell[[]analysis.BufferWindow]{}, err
		}
		return perCell[[]analysis.BufferWindow]{app: run.Cell.App, v: acc.Windows()}, nil
	})
	if err != nil {
		return res, err
	}
	for _, app := range workload.Apps {
		var windows []analysis.BufferWindow
		for _, w := range wins {
			if w.app == app {
				windows = append(windows, w.v...)
			}
		}
		res.Box[app] = analysis.BufferBoxplots(windows)
		res.MaxHotFrac[app] = analysis.MaxHotPortFraction(windows, rack.NumPorts())

		// Normalize peaks (same normalization as the boxplots) and split
		// into low/high hot-port regimes.
		var maxPeak float64
		for _, w := range windows {
			if w.PeakBytes > maxPeak {
				maxPeak = w.PeakBytes
			}
		}
		hotCounts := make([]int, 0, len(windows))
		for _, w := range windows {
			hotCounts = append(hotCounts, w.HotPorts)
		}
		sort.Ints(hotCounts)
		highCut := 3
		if len(hotCounts) > 0 {
			highCut = hotCounts[len(hotCounts)*3/4]
			if highCut < 3 {
				highCut = 3
			}
		}
		var lowSum, highSum float64
		var lowN, highN int
		for _, w := range windows {
			if maxPeak == 0 {
				continue
			}
			v := w.PeakBytes / maxPeak
			if w.HotPorts <= 2 {
				lowSum += v
				lowN++
			}
			if w.HotPorts >= highCut {
				highSum += v
				highN++
			}
		}
		if lowN > 0 {
			res.MeanPeakLow[app] = lowSum / float64(lowN)
		}
		if highN > 0 {
			res.MeanPeakHigh[app] = highSum / float64(highN)
		}
	}
	return res, nil
}

// Format renders the Fig 10 summary rows.
func (r Fig10Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 10: peak buffer vs hot ports (paper: grows with hot ports, hadoop ≫ web/cache, levels off; max hot: hadoop 100%, web 71%, cache 64%)\n")
	for _, app := range workload.Apps {
		if _, ok := r.Box[app]; !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-7s max simultaneous hot ports = %.0f%%; mean normalized peak: ≤2 hot %.2f → many hot %.2f\n",
			app, r.MaxHotFrac[app]*100, r.MeanPeakLow[app], r.MeanPeakHigh[app])
	}
	return strings.TrimRight(b.String(), "\n")
}
