// Package core is the public façade of the reproduction: it orchestrates
// measurement campaigns over simulated racks and computes every table and
// figure of the paper's evaluation.
//
// The methodology mirrors §4.2. A campaign covers several racks per
// application class; for each rack and each "hour" window it builds a
// fresh deterministic rack simulation (with a diurnal load factor),
// attaches the high-resolution collection framework to the experiment's
// counters, records a short window, and feeds the samples to the analysis
// package. The paper used 10 racks × 24 windows × 2 minutes per
// application; the defaults here are scaled down (~60×) but every scale
// knob is in Config.
//
// One Experiment method per paper artifact:
//
//	Fig1 DropUtilScatter      Fig6 UtilizationCDF
//	Fig2 DropTimeSeries       Fig7 UplinkMAD
//	Table1 SamplingLoss       Fig8 ServerCorrelation
//	Fig3 BurstDurations       Fig9 HotPortShare
//	Table2 BurstMarkov        Fig10 BufferOccupancy
//	Fig4 InterBurstGaps       (plus ablations, see bench_test.go)
//	Fig5 PacketSizes
package core

import (
	"fmt"

	"mburst/internal/fault"
	"mburst/internal/obs"
	"mburst/internal/ptrace"
	"mburst/internal/simclock"
	"mburst/internal/simnet"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// Config scales and parameterizes an Experiment.
type Config struct {
	// Racks is the number of racks measured per application class
	// (the paper used 10).
	Racks int
	// Windows is the number of measurement windows per rack (the paper
	// used 24, one random 2-minute slice per hour of a day).
	Windows int
	// WindowDur is each window's recorded duration.
	WindowDur simclock.Duration
	// Warmup runs before recording so queues and flows reach steady
	// state.
	Warmup simclock.Duration
	// Servers is the number of servers per rack.
	Servers int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Diurnal modulates offered load across windows (the paper's windows
	// span a day, capturing diurnal patterns).
	Diurnal bool
	// HotThreshold overrides the burst criterion (0 = the paper's 50%).
	HotThreshold float64
	// Balancer selects the uplink balancing scheme (ablations).
	Balancer simnet.BalancerMode
	// FlowletGap configures BalanceFlowlet.
	FlowletGap simclock.Duration
	// Paced enables the §7 pacing ablation in all workloads.
	Paced bool
	// BufferBytes / Alpha override the ASIC shared buffer (0 = defaults).
	BufferBytes float64
	Alpha       float64
	// Params overrides workload parameters per app; nil uses
	// workload.DefaultParams.
	Params func(app workload.App) workload.Params
	// Workers bounds the campaign runner's worker pool: how many
	// (app, rack, window) cells simulate concurrently. 0 means
	// runtime.GOMAXPROCS(0). Campaign output is byte-identical for every
	// worker count (see Runner).
	Workers int
	// Metrics, when non-nil, receives campaign telemetry: every poller the
	// experiment builds reports into one shared PollerMetrics set, and
	// window/sample progress counters are updated as campaigns run. Nil
	// (the default) keeps campaigns telemetry-free at no cost.
	Metrics *obs.Registry
	// Faults, when non-nil, injects a randomized fault schedule into every
	// campaign cell's poller. Each cell draws its own schedule from the
	// experiment seed (stream "fault/<app>/r<rack>/w<window>"), so chaos
	// campaigns stay a pure function of (Config, Cell) and byte-identical
	// across worker counts. Mutually exclusive with FaultSchedule.
	Faults *fault.GenConfig
	// FaultSchedule, when non-nil, applies one fixed fault schedule to every
	// cell — the reproducible-single-scenario counterpart to Faults. Offsets
	// are relative to each cell's recording start.
	FaultSchedule *fault.Schedule
	// WireFormat selects the wire format RecordCampaign writes its window
	// files in (recorded in the trace metadata); the zero value is
	// wire.DefaultFormat (trace-v1). wire.FormatMBW3 selects the columnar
	// trace-v2 layout, typically several times smaller. Readers dispatch
	// per batch magic, so analyses accept either.
	WireFormat wire.Format
	// TraceOpener, when non-nil, replaces os.Create for RecordCampaign's
	// window files so disk faults are injectable (fault.FlakyOpener matches
	// this type structurally).
	TraceOpener trace.Opener
	// Tracer, when non-nil, records the full pipeline span chain for every
	// batch RecordCampaign persists (see internal/ptrace). Span times are
	// pure functions of batch content, so the dump is byte-identical across
	// worker counts.
	Tracer *ptrace.Tracer
}

// DefaultConfig returns the standard scaled-down reproduction: 3 racks ×
// 8 windows × 250 ms per application (≈ 6 s of 5 µs-resolution simulation
// per app).
func DefaultConfig() Config {
	return Config{
		Racks:     3,
		Windows:   8,
		WindowDur: 250 * simclock.Millisecond,
		Warmup:    25 * simclock.Millisecond,
		Servers:   32,
		Seed:      1,
		Diurnal:   true,
	}
}

// QuickConfig returns a minimal configuration for tests and examples:
// 1 rack × 2 windows × 100 ms.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Racks = 1
	cfg.Windows = 2
	cfg.WindowDur = 100 * simclock.Millisecond
	cfg.Warmup = 10 * simclock.Millisecond
	cfg.Servers = 16
	return cfg
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.Racks <= 0:
		return fmt.Errorf("core: Racks = %d", c.Racks)
	case c.Windows <= 0:
		return fmt.Errorf("core: Windows = %d", c.Windows)
	case c.WindowDur <= 0:
		return fmt.Errorf("core: WindowDur = %v", c.WindowDur)
	case c.Warmup < 0:
		return fmt.Errorf("core: Warmup = %v", c.Warmup)
	case c.Servers <= 0:
		return fmt.Errorf("core: Servers = %d", c.Servers)
	case c.HotThreshold < 0 || c.HotThreshold >= 1:
		return fmt.Errorf("core: HotThreshold = %v", c.HotThreshold)
	case c.Workers < 0:
		return fmt.Errorf("core: Workers = %d", c.Workers)
	case c.Faults != nil && c.FaultSchedule != nil:
		return fmt.Errorf("core: Faults and FaultSchedule are mutually exclusive")
	}
	if c.WireFormat != 0 {
		if _, err := wire.NewCodec(c.WireFormat); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.FaultSchedule != nil {
		if err := c.FaultSchedule.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// ResolvedParams returns the workload parameters the experiment will use
// for an app, applying overrides and the pacing ablation. Exposed so
// higher-level harnesses (internal/sweep) build identical rack simulations.
func (c Config) ResolvedParams(app workload.App) workload.Params {
	return c.params(app)
}

// params returns the workload parameters for an app, applying overrides
// and the pacing ablation.
func (c Config) params(app workload.App) workload.Params {
	var p workload.Params
	if c.Params != nil {
		p = c.Params(app)
	} else {
		p = workload.DefaultParams(app)
	}
	if c.Paced {
		p.Paced = true
		if p.PacedCap == 0 {
			p.PacedCap = 0.95
		}
	}
	return p
}
