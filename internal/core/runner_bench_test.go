package core

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"mburst/internal/simclock"
	"mburst/internal/workload"
)

// benchConfig is the ISSUE's reference campaign: 4 racks × 4 windows.
func benchConfig(workers int) Config {
	cfg := QuickConfig()
	cfg.Racks = 4
	cfg.Windows = 4
	cfg.WindowDur = 30 * simclock.Millisecond
	cfg.Warmup = 5 * simclock.Millisecond
	cfg.Workers = workers
	return cfg
}

func runBenchCampaign(tb testing.TB, workers int) time.Duration {
	exp, err := NewExperiment(benchConfig(workers))
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	if _, err := exp.RunByteCampaign(context.Background(), workload.Hadoop, 0); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkRunnerCampaign contrasts the serial and parallel paths of the
// same 4-rack × 4-window byte campaign. Run with:
//
//	go test -run=^$ -bench=BenchmarkRunnerCampaign -benchtime=1x ./internal/core
func BenchmarkRunnerCampaign(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchCampaign(b, bc.workers)
			}
		})
	}
}

// TestRunnerBenchArtifact measures serial vs. parallel wall-clock for the
// reference campaign and writes a JSON artifact, so CI tracks the perf
// trajectory across PRs. Gated on MBURST_BENCH_OUT (the artifact path) to
// keep ordinary test runs fast.
func TestRunnerBenchArtifact(t *testing.T) {
	out := os.Getenv("MBURST_BENCH_OUT")
	if out == "" {
		t.Skip("MBURST_BENCH_OUT not set")
	}
	serial := runBenchCampaign(t, 1)
	parallel := runBenchCampaign(t, 4)
	artifact := struct {
		Name       string  `json:"name"`
		Racks      int     `json:"racks"`
		Windows    int     `json:"windows"`
		Workers    int     `json:"workers"`
		CPUs       int     `json:"cpus"`
		SerialMs   float64 `json:"serial_ms"`
		ParallelMs float64 `json:"parallel_ms"`
		Speedup    float64 `json:"speedup"`
	}{
		Name:       "runner_campaign",
		Racks:      4,
		Windows:    4,
		Workers:    4,
		CPUs:       runtime.NumCPU(),
		SerialMs:   float64(serial.Microseconds()) / 1000,
		ParallelMs: float64(parallel.Microseconds()) / 1000,
		Speedup:    float64(serial) / float64(parallel),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %v, 4 workers %v (%.2fx)", serial, parallel, artifact.Speedup)
}
