package core

// This file pins the tentpole invariant of the streaming refactor: every
// streaming figure runner produces byte-identical output to the batch
// (materializing) reduction it replaced. The batch reductions below are
// the pre-refactor runner bodies, kept verbatim as oracles; campaign
// generation is deterministic (TestByteCampaignDeterminism), so oracle
// and streaming runner see identical samples and must agree bit for bit
// — including float accumulation order, error precedence, and NaN
// placement.

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"mburst/internal/analysis"
	"mburst/internal/asic"
	"mburst/internal/collector"
	"mburst/internal/detect"
	"mburst/internal/fault"
	"mburst/internal/simclock"
	"mburst/internal/stats"
	"mburst/internal/topo"
	"mburst/internal/trace"
	"mburst/internal/wire"
	"mburst/internal/workload"
)

// ---------------------------------------------------------------------------
// NaN-tolerant deep equality. reflect.DeepEqual treats NaN != NaN, but
// several figure fields (Markov P rows with no observations, Pearson r of
// constant series) are legitimately NaN in both modes; equality here means
// "same bits modulo NaN identity".

func nanEqual(a, b reflect.Value) bool {
	if a.IsValid() != b.IsValid() {
		return false
	}
	if !a.IsValid() {
		return true
	}
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		af, bf := a.Float(), b.Float()
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return nanEqual(a.Elem(), b.Elem())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !nanEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice:
		if a.IsNil() != b.IsNil() {
			return false
		}
		fallthrough
	case reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !nanEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !nanEqual(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.String:
		return a.String() == b.String()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	default:
		// Chan/func/complex never appear in figure results.
		return false
	}
}

func assertStreamEqual(t *testing.T, name string, batch, stream any) {
	t.Helper()
	if reflect.DeepEqual(batch, stream) {
		return
	}
	if nanEqual(reflect.ValueOf(batch), reflect.ValueOf(stream)) {
		return
	}
	t.Errorf("%s: streaming result diverges from batch oracle\nbatch:  %+v\nstream: %+v", name, batch, stream)
}

// ---------------------------------------------------------------------------
// Batch oracles — the pre-refactor figure reductions, verbatim.

func batchFig1(ctx context.Context, e *Experiment) (Fig1Result, error) {
	var res Fig1Result
	coarse := e.cfg.WindowDur / 5
	if coarse <= 0 {
		coarse = simclock.Millisecond
	}
	cells := e.appGrid(downlinkCounters(e.cfg.Servers, asic.KindBytes, asic.KindDrops), coarse)
	pts, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) ([]analysis.CoarsePoint, error) {
		split := analysis.Split(run.Samples)
		var out []analysis.CoarsePoint
		for s := 0; s < e.cfg.Servers; s++ {
			bytes := split[analysis.SeriesKey{Port: uint16(s), Dir: asic.TX, Kind: asic.KindBytes}]
			drops := split[analysis.SeriesKey{Port: uint16(s), Dir: asic.TX, Kind: asic.KindDrops}]
			pt, err := analysis.CoarseWindow(bytes, drops, run.Net.Switch().Port(s).Speed())
			if err != nil {
				continue // window too short for this port; skip
			}
			out = append(out, pt)
		}
		return out, nil
	})
	if err != nil {
		return res, err
	}
	for _, p := range pts {
		res.Points = append(res.Points, p...)
	}
	res.Correlation = analysis.DropUtilCorrelation(res.Points)
	return res, nil
}

func batchFig2(ctx context.Context, e *Experiment) (Fig2Result, error) {
	res := Fig2Result{BinDur: e.cfg.WindowDur / 20}
	if res.BinDur <= 0 {
		res.BinDur = simclock.Millisecond
	}
	type port struct {
		bins  []uint64
		stats analysis.Burstiness
		avg   float64
	}
	plan := downlinkCounters(e.cfg.Servers, asic.KindDrops, asic.KindBytes)
	cells := []Cell{
		{App: workload.Web, Plan: plan, Interval: res.BinDur / 4, Duration: 4 * e.cfg.WindowDur},
		{App: workload.Hadoop, Plan: plan, Interval: res.BinDur / 4, Duration: 4 * e.cfg.WindowDur},
	}
	ports, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (port, error) {
		split := analysis.Split(run.Samples)
		best, bestDrops := 0, uint64(0)
		for s := 0; s < e.cfg.Servers; s++ {
			ds := split[analysis.SeriesKey{Port: uint16(s), Dir: asic.TX, Kind: asic.KindDrops}]
			if len(ds) < 2 {
				continue
			}
			if d := ds[len(ds)-1].Value - ds[0].Value; d > bestDrops {
				best, bestDrops = s, d
			}
		}
		drops := split[analysis.SeriesKey{Port: uint16(best), Dir: asic.TX, Kind: asic.KindDrops}]
		bytes := split[analysis.SeriesKey{Port: uint16(best), Dir: asic.TX, Kind: asic.KindBytes}]
		bins, err := analysis.DropTimeSeries(drops, res.BinDur)
		if err != nil {
			return port{}, err
		}
		series, err := analysis.UtilizationSeries(bytes, run.Net.Switch().Port(best).Speed())
		if err != nil {
			return port{}, err
		}
		var avg float64
		for _, p := range series {
			avg += p.Util
		}
		avg /= float64(len(series))
		return port{bins: bins, stats: analysis.DropBurstiness(bins), avg: avg}, nil
	})
	if err != nil {
		return res, err
	}
	res.LowUtil, res.LowStats, res.LowAvg = ports[0].bins, ports[0].stats, ports[0].avg
	res.HighUtil, res.HighStats, res.HighAvg = ports[1].bins, ports[1].stats, ports[1].avg
	return res, nil
}

// batchByteFigures is the pre-refactor RunAll shared-campaign section:
// Figs 3, 4, 6 and Table 2 reduced from materialized ByteCampaign window
// series.
func batchByteFigures(ctx context.Context, e *Experiment) (Fig3Result, Fig4Result, Table2Result, Fig6Result, error) {
	th := e.threshold()
	fig3 := Fig3Result{Durations: make(AppECDF)}
	fig4 := Fig4Result{Gaps: make(AppECDF), KS: make(map[workload.App]stats.KSResult)}
	table2 := Table2Result{Models: make(map[workload.App]stats.MarkovModel)}
	fig6 := Fig6Result{Utils: make(AppECDF), HotFrac: make(map[workload.App]float64)}
	for _, app := range workload.Apps {
		c, err := e.RunByteCampaign(ctx, app, 0)
		if err != nil {
			return fig3, fig4, table2, fig6, err
		}
		fig3.Durations[app] = stats.NewECDF(c.BurstDurationsMicros(th))
		gaps := c.InterBurstGapsMicros(th)
		fig4.Gaps[app] = stats.NewECDF(gaps)
		fig4.KS[app] = analysis.PoissonTest(gaps)
		models := make([]stats.MarkovModel, 0, len(c.WindowSeries))
		for _, s := range c.WindowSeries {
			models = append(models, analysis.BurstMarkov(s, th))
		}
		table2.Models[app] = stats.MergeMarkov(models...)
		utils := c.Utils()
		fig6.Utils[app] = stats.NewECDF(utils)
		hot := 0
		for _, u := range utils {
			if u > th {
				hot++
			}
		}
		if len(utils) > 0 {
			fig6.HotFrac[app] = float64(hot) / float64(len(utils))
		}
	}
	return fig3, fig4, table2, fig6, nil
}

func batchFig5(ctx context.Context, e *Experiment) (Fig5Result, error) {
	res := Fig5Result{Mix: make(map[workload.App]analysis.PacketMixResult)}
	interval := 100 * simclock.Microsecond
	var cells []Cell
	for _, app := range workload.Apps {
		app := app
		plan := func(_ topo.Rack, rackID, window int) []collector.CounterSpec {
			port := e.randomPort(app, rackID, window)
			return []collector.CounterSpec{
				{Port: port, Dir: asic.TX, Kind: asic.KindBytes},
				{Port: port, Dir: asic.TX, Kind: asic.KindSizeBins},
			}
		}
		cells = append(cells, e.campaignCells([]workload.App{app}, plan, interval, 0)...)
	}
	mixes, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[analysis.PacketMixResult], error) {
		c := run.Cell
		port := e.randomPort(c.App, c.RackID, c.Window)
		split := analysis.Split(run.Samples)
		bytes := split[analysis.SeriesKey{Port: uint16(port), Dir: asic.TX, Kind: asic.KindBytes}]
		bins := split[analysis.SeriesKey{Port: uint16(port), Dir: asic.TX, Kind: asic.KindSizeBins}]
		mix, err := analysis.PacketMixInsideOutside(bytes, bins, run.Net.Switch().Port(port).Speed(), e.threshold())
		if err != nil {
			return perCell[analysis.PacketMixResult]{}, err
		}
		return perCell[analysis.PacketMixResult]{app: c.App, v: mix}, nil
	})
	if err != nil {
		return res, err
	}
	for _, m := range mixes {
		agg, ok := res.Mix[m.app]
		if !ok {
			agg = analysis.PacketMixResult{Inside: analysis.NewSizeHistogram(), Outside: analysis.NewSizeHistogram()}
		}
		agg.Inside.Merge(m.v.Inside)
		agg.Outside.Merge(m.v.Outside)
		agg.InsidePeriods += m.v.InsidePeriods
		agg.OutsidePeriods += m.v.OutsidePeriods
		res.Mix[m.app] = agg
	}
	return res, nil
}

func batchRebinAll(series [][]analysis.UtilPoint, width simclock.Duration) [][]analysis.UtilPoint {
	out := make([][]analysis.UtilPoint, len(series))
	for i, s := range series {
		out[i] = analysis.Rebin(s, width)
	}
	return out
}

func batchFig7(ctx context.Context, e *Experiment) (Fig7Result, error) {
	rack := e.Rack()
	res := Fig7Result{MAD: make(map[workload.App]Fig7Curves)}
	res.CoarseBin = e.cfg.WindowDur
	if res.CoarseBin > simclock.Second {
		res.CoarseBin = simclock.Second
	}
	interval := 40 * simclock.Microsecond
	plan := func(rack topo.Rack, _, _ int) []collector.CounterSpec {
		var out []collector.CounterSpec
		for u := 0; u < rack.NumUplinks; u++ {
			out = append(out,
				collector.CounterSpec{Port: rack.UplinkPort(u), Dir: asic.TX, Kind: asic.KindBytes},
				collector.CounterSpec{Port: rack.UplinkPort(u), Dir: asic.RX, Kind: asic.KindBytes},
			)
		}
		return out
	}
	type mads struct{ egFine, egCoarse, inFine, inCoarse []float64 }
	cells := e.appGrid(plan, interval)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[mads], error) {
		split := analysis.Split(run.Samples)
		series := func(dir asic.Direction) [][]analysis.UtilPoint {
			var out [][]analysis.UtilPoint
			for u := 0; u < rack.NumUplinks; u++ {
				key := analysis.SeriesKey{Port: uint16(rack.UplinkPort(u)), Dir: dir, Kind: asic.KindBytes}
				s, err := analysis.UtilizationSeries(split[key], rack.UplinkSpeed)
				if err != nil {
					continue
				}
				out = append(out, s)
			}
			return out
		}
		eg := series(asic.TX)
		in := series(asic.RX)
		return perCell[mads]{app: run.Cell.App, v: mads{
			egFine:   analysis.UplinkMAD(eg),
			inFine:   analysis.UplinkMAD(in),
			egCoarse: analysis.UplinkMAD(batchRebinAll(eg, res.CoarseBin)),
			inCoarse: analysis.UplinkMAD(batchRebinAll(in, res.CoarseBin)),
		}}, nil
	})
	if err != nil {
		return res, err
	}
	for _, app := range workload.Apps {
		var m mads
		for _, w := range wins {
			if w.app != app {
				continue
			}
			m.egFine = append(m.egFine, w.v.egFine...)
			m.egCoarse = append(m.egCoarse, w.v.egCoarse...)
			m.inFine = append(m.inFine, w.v.inFine...)
			m.inCoarse = append(m.inCoarse, w.v.inCoarse...)
		}
		res.MAD[app] = Fig7Curves{
			EgressFine:    stats.NewECDF(m.egFine),
			EgressCoarse:  stats.NewECDF(m.egCoarse),
			IngressFine:   stats.NewECDF(m.inFine),
			IngressCoarse: stats.NewECDF(m.inCoarse),
		}
	}
	return res, nil
}

func batchFig8(ctx context.Context, e *Experiment) (Fig8Result, error) {
	res := Fig8Result{
		Corr:        make(map[workload.App][][]float64),
		MeanOffDiag: make(map[workload.App]float64),
		BlockScore:  make(map[workload.App]float64),
	}
	interval := 250 * simclock.Microsecond
	var cells []Cell
	for _, app := range workload.Apps {
		cells = append(cells, Cell{
			App: app, Plan: downlinkCounters(e.cfg.Servers, asic.KindBytes), Interval: interval,
		})
	}
	corrs, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) ([][]float64, error) {
		split := analysis.Split(run.Samples)
		var series [][]analysis.UtilPoint
		for s := 0; s < e.cfg.Servers; s++ {
			key := analysis.SeriesKey{Port: uint16(s), Dir: asic.TX, Kind: asic.KindBytes}
			ser, err := analysis.UtilizationSeries(split[key], run.Net.Switch().Port(s).Speed())
			if err != nil {
				return nil, err
			}
			series = append(series, ser)
		}
		return analysis.ServerCorrelation(series), nil
	})
	if err != nil {
		return res, err
	}
	for i, app := range workload.Apps {
		corr := corrs[i]
		res.Corr[app] = corr

		var sum float64
		var n int
		for i := range corr {
			for j := i + 1; j < len(corr); j++ {
				if v := corr[i][j]; v == v {
					if v < 0 {
						v = -v
					}
					sum += v
					n++
				}
			}
		}
		if n > 0 {
			res.MeanOffDiag[app] = sum / float64(n)
		}

		params := e.cfg.params(app)
		if params.GroupCount > 0 && params.GroupSpan > 0 {
			groupOf := make([]int, e.cfg.Servers)
			for s := range groupOf {
				groupOf[s] = (s / params.GroupSpan) % params.GroupCount
			}
			res.BlockScore[app] = analysis.GroupBlockScore(corr, groupOf)
		}
	}
	return res, nil
}

// batchPortSeries is the pre-refactor all-port series materializer shared
// by the Fig 9/10 oracles.
func batchPortSeries(run *CellRun, ports int) ([][]analysis.UtilPoint, error) {
	split := analysis.Split(run.Samples)
	series := make([][]analysis.UtilPoint, 0, ports)
	for p := 0; p < ports; p++ {
		key := analysis.SeriesKey{Port: uint16(p), Dir: asic.TX, Kind: asic.KindBytes}
		ser, err := analysis.UtilizationSeries(split[key], run.Net.Switch().Port(p).Speed())
		if err != nil {
			return nil, err
		}
		series = append(series, ser)
	}
	return series, nil
}

func batchFig9(ctx context.Context, e *Experiment) (Fig9Result, error) {
	rack := e.Rack()
	res := Fig9Result{Share: make(map[workload.App]analysis.HotShare)}
	interval := 300 * simclock.Microsecond
	cells := e.appGrid(AllPortCounters(false), interval)
	shares, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[analysis.HotShare], error) {
		series, err := batchPortSeries(run, rack.NumPorts())
		if err != nil {
			return perCell[analysis.HotShare]{}, err
		}
		s := analysis.HotPortShare(series, rack.IsUplink, e.threshold())
		return perCell[analysis.HotShare]{app: run.Cell.App, v: s}, nil
	})
	if err != nil {
		return res, err
	}
	for _, s := range shares {
		share := res.Share[s.app]
		share.UplinkHot += s.v.UplinkHot
		share.DownlinkHot += s.v.DownlinkHot
		res.Share[s.app] = share
	}
	return res, nil
}

func batchFig10(ctx context.Context, e *Experiment) (Fig10Result, error) {
	rack := e.Rack()
	res := Fig10Result{
		Box:          make(map[workload.App]map[int]stats.BoxplotSummary),
		MaxHotFrac:   make(map[workload.App]float64),
		MeanPeakLow:  make(map[workload.App]float64),
		MeanPeakHigh: make(map[workload.App]float64),
	}
	interval := 300 * simclock.Microsecond
	window := e.cfg.WindowDur / 12
	if window > 50*simclock.Millisecond {
		window = 50 * simclock.Millisecond
	}
	if window < simclock.Millisecond {
		window = simclock.Millisecond
	}
	cells := e.appGrid(AllPortCounters(true), interval)
	wins, err := RunCells(ctx, e.Runner(), cells, func(run *CellRun) (perCell[[]analysis.BufferWindow], error) {
		series, err := batchPortSeries(run, rack.NumPorts())
		if err != nil {
			return perCell[[]analysis.BufferWindow]{}, err
		}
		var peaks []wire.Sample
		for _, s := range run.Samples {
			if s.Kind == asic.KindBufferPeak {
				peaks = append(peaks, s)
			}
		}
		w, err := analysis.BufferVsHotPorts(series, peaks, window, e.threshold())
		if err != nil {
			return perCell[[]analysis.BufferWindow]{}, err
		}
		return perCell[[]analysis.BufferWindow]{app: run.Cell.App, v: w}, nil
	})
	if err != nil {
		return res, err
	}
	for _, app := range workload.Apps {
		var windows []analysis.BufferWindow
		for _, w := range wins {
			if w.app == app {
				windows = append(windows, w.v...)
			}
		}
		res.Box[app] = analysis.BufferBoxplots(windows)
		res.MaxHotFrac[app] = analysis.MaxHotPortFraction(windows, rack.NumPorts())

		var maxPeak float64
		for _, w := range windows {
			if w.PeakBytes > maxPeak {
				maxPeak = w.PeakBytes
			}
		}
		hotCounts := make([]int, 0, len(windows))
		for _, w := range windows {
			hotCounts = append(hotCounts, w.HotPorts)
		}
		sort.Ints(hotCounts)
		highCut := 3
		if len(hotCounts) > 0 {
			highCut = hotCounts[len(hotCounts)*3/4]
			if highCut < 3 {
				highCut = 3
			}
		}
		var lowSum, highSum float64
		var lowN, highN int
		for _, w := range windows {
			if maxPeak == 0 {
				continue
			}
			v := w.PeakBytes / maxPeak
			if w.HotPorts <= 2 {
				lowSum += v
				lowN++
			}
			if w.HotPorts >= highCut {
				highSum += v
				highN++
			}
		}
		if lowN > 0 {
			res.MeanPeakLow[app] = lowSum / float64(lowN)
		}
		if highN > 0 {
			res.MeanPeakHigh[app] = highSum / float64(highN)
		}
	}
	return res, nil
}

func batchImplications(ctx context.Context, e *Experiment) (ImplicationsResult, error) {
	res := ImplicationsResult{
		SignalRTTs: []simclock.Duration{
			50 * simclock.Microsecond,
			100 * simclock.Microsecond,
			250 * simclock.Microsecond,
		},
		OverBeforeSignal: make(map[workload.App][]float64),
		RepathableGaps:   make(map[workload.App]float64),
	}
	th := e.threshold()
	for _, app := range workload.Apps {
		c, err := e.RunByteCampaign(ctx, app, 0)
		if err != nil {
			return res, err
		}
		durs := c.BurstDurationsMicros(th)
		fracs := make([]float64, len(res.SignalRTTs))
		for i, rtt := range res.SignalRTTs {
			fracs[i] = detect.FractionOverBeforeSignal(durs, rtt/2)
		}
		res.OverBeforeSignal[app] = fracs

		gaps := c.InterBurstGapsMicros(th)
		oneWay := float64(res.SignalRTTs[len(res.SignalRTTs)/2]/2) / float64(simclock.Microsecond)
		long := 0
		for _, g := range gaps {
			if g > oneWay {
				long++
			}
		}
		if len(gaps) > 0 {
			res.RepathableGaps[app] = float64(long) / float64(len(gaps))
		}

		if app == workload.Web {
			var allBursts []analysis.Burst
			var thEvents, ewEvents []detect.Event
			thDet, err := detect.NewThresholdDetector(th, 1, 1)
			if err != nil {
				return res, err
			}
			ewDet, err := detect.NewEWMADetector(0.3, th, th*0.6)
			if err != nil {
				return res, err
			}
			for _, s := range c.WindowSeries {
				allBursts = append(allBursts, analysis.Bursts(s, th)...)
				thDet.Reset()
				ewDet.Reset()
				thEvents = append(thEvents, detect.Run(thDet, s)...)
				ewEvents = append(ewEvents, detect.Run(ewDet, s)...)
			}
			slack := 4 * ByteCampaignInterval
			res.ThresholdEval = detect.Evaluate(allBursts, thEvents, slack)
			res.EWMAEval = detect.Evaluate(allBursts, ewEvents, slack)
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// The equivalence tests proper.

// TestStreamingReportEquivalence re-derives every figure with the batch
// oracle and requires bit-identity with the streaming report.
func TestStreamingReportEquivalence(t *testing.T) {
	e, rep := quickReport(t)
	ctx := context.Background()

	t.Run("fig1", func(t *testing.T) {
		want, err := batchFig1(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig1", want, rep.Fig1)
	})
	t.Run("fig2", func(t *testing.T) {
		want, err := batchFig2(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig2", want, rep.Fig2)
	})
	t.Run("byte-figures", func(t *testing.T) {
		fig3, fig4, table2, fig6, err := batchByteFigures(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig3", fig3, rep.Fig3)
		assertStreamEqual(t, "fig4", fig4, rep.Fig4)
		assertStreamEqual(t, "table2", table2, rep.Table2)
		assertStreamEqual(t, "fig6", fig6, rep.Fig6)
	})
	t.Run("fig5", func(t *testing.T) {
		want, err := batchFig5(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig5", want, rep.Fig5)
	})
	t.Run("fig7", func(t *testing.T) {
		want, err := batchFig7(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig7", want, rep.Fig7)
	})
	t.Run("fig8", func(t *testing.T) {
		want, err := batchFig8(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig8", want, rep.Fig8)
	})
	t.Run("fig9", func(t *testing.T) {
		want, err := batchFig9(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig9", want, rep.Fig9)
	})
	t.Run("fig10", func(t *testing.T) {
		want, err := batchFig10(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "fig10", want, rep.Fig10)
	})
	t.Run("implications", func(t *testing.T) {
		want, err := batchImplications(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		assertStreamEqual(t, "implications", want, rep.Implications)
	})
}

// TestStreamByteStatsMatchesCampaignReductions pins the element order of
// the streaming byte reduction, not just the (order-insensitive) ECDFs
// built from it: slices must match the batch campaign reductions exactly.
func TestStreamByteStatsMatchesCampaignReductions(t *testing.T) {
	e, _ := quickReport(t)
	ctx := context.Background()
	th := e.threshold()
	app := workload.Hadoop

	st, err := e.StreamByteStats(ctx, app, 0, ByteWant{Durations: true, Gaps: true, Utils: true, Markov: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.RunByteCampaign(ctx, app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Durations) == 0 || len(st.Utils) == 0 {
		t.Fatalf("vacuous campaign: %d durations, %d utils", len(st.Durations), len(st.Utils))
	}
	if !reflect.DeepEqual(st.Durations, c.BurstDurationsMicros(th)) {
		t.Error("streaming burst durations diverge from batch, or differ in order")
	}
	if !reflect.DeepEqual(st.Gaps, c.InterBurstGapsMicros(th)) {
		t.Error("streaming inter-burst gaps diverge from batch, or differ in order")
	}
	if !reflect.DeepEqual(st.Utils, c.Utils()) {
		t.Error("streaming utilization samples diverge from batch, or differ in order")
	}
	if !reflect.DeepEqual(st.Ports, c.Ports) {
		t.Errorf("measured ports diverge: stream %v, batch %v", st.Ports, c.Ports)
	}
	models := make([]stats.MarkovModel, 0, len(c.WindowSeries))
	for _, s := range c.WindowSeries {
		models = append(models, analysis.BurstMarkov(s, th))
	}
	assertStreamEqual(t, "markov", stats.MergeMarkov(models...), st.Markov)
	hot := 0
	for _, u := range c.Utils() {
		if u > th {
			hot++
		}
	}
	if st.HotSamples != hot {
		t.Errorf("hot samples = %d, batch count = %d", st.HotSamples, hot)
	}
}

// TestAnalyzeTraceStreamEquivalence runs every analysis kind over
// recorded traces in both AnalyzeTrace modes — including a trace recorded
// under an injected fault schedule, where damaged series must be skipped
// identically — and requires identical results.
func TestAnalyzeTraceStreamEquivalence(t *testing.T) {
	ctx := context.Background()
	cfg := QuickConfig()
	cfg.Servers = 8
	cfg.WindowDur = 50 * simclock.Millisecond

	traces := make(map[string]string)

	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces["random-port"] = filepath.Join(t.TempDir(), "rand")
	if err := exp.RecordCampaign(ctx, workload.Cache, traces["random-port"], 0, "eq", exp.RandomPortCounters(workload.Cache)); err != nil {
		t.Fatal(err)
	}

	allCfg := cfg
	allCfg.Windows = 1
	expAll, err := NewExperiment(allCfg)
	if err != nil {
		t.Fatal(err)
	}
	traces["all-ports"] = filepath.Join(t.TempDir(), "all")
	if err := expAll.RecordCampaign(ctx, workload.Hadoop, traces["all-ports"], 250*simclock.Microsecond, "eq", AllPortCounters(true)); err != nil {
		t.Fatal(err)
	}

	sched, err := fault.ParseSchedule("stuck@5ms+10ms,restart@25ms,stall@30ms+10ms:200µs")
	if err != nil {
		t.Fatal(err)
	}
	faultCfg := cfg
	faultCfg.FaultSchedule = &sched
	expFault, err := NewExperiment(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	traces["faulted"] = filepath.Join(t.TempDir(), "faulted")
	if err := expFault.RecordCampaign(ctx, workload.Web, traces["faulted"], 0, "eq-fault", expFault.RandomPortCounters(workload.Web)); err != nil {
		t.Fatal(err)
	}

	for name, dir := range traces {
		r, err := trace.Open(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, kind := range AnalyzeKinds {
			batch, err := AnalyzeTrace(r, kind, 0, false)
			if err != nil {
				t.Fatalf("%s/%s batch: %v", name, kind, err)
			}
			stream, err := AnalyzeTrace(r, kind, 0, true)
			if err != nil {
				t.Fatalf("%s/%s stream: %v", name, kind, err)
			}
			assertStreamEqual(t, name+"/"+kind, batch, stream)
			if batch.Windows == 0 {
				t.Errorf("%s/%s: no readable windows — equivalence is vacuous", name, kind)
			}
		}
	}
}

// TestTraceV2Equivalence records the same campaign as trace-v1 and
// trace-v2 (mbw3): the window samples must be identical, every figure
// must compute identically over both recordings in both AnalyzeTrace
// modes, and the v2 directory must be substantially smaller on disk.
func TestTraceV2Equivalence(t *testing.T) {
	ctx := context.Background()
	cfg := QuickConfig()
	cfg.Servers = 8
	cfg.WindowDur = 50 * simclock.Millisecond

	record := func(format wire.Format) string {
		c := cfg
		c.WireFormat = format
		exp, err := NewExperiment(c)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "c")
		err = exp.RecordCampaign(ctx, workload.Web, dir, 0, "eq-v2", exp.RandomPortCounters(workload.Web))
		if err != nil {
			t.Fatal(err)
		}
		return dir
	}
	dirV1 := record(0)
	dirV2 := record(wire.FormatMBW3)

	r1, err := trace.Open(dirV1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := trace.Open(dirV2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Meta().Format; got != "mbw3" {
		t.Errorf("trace-v2 meta format = %q", got)
	}

	// The decoded streams must match sample-for-sample.
	for i := 0; i < r1.Meta().Windows; i++ {
		s1, err := readWindow(r1, i)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := readWindow(r2, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(s1) == 0 {
			t.Fatalf("window %d empty — equivalence is vacuous", i)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("window %d decodes differently from trace-v2", i)
		}
	}

	// Every figure, both analysis modes, over the v1 oracle and the v2
	// recording.
	for _, kind := range AnalyzeKinds {
		oracle, err := AnalyzeTrace(r1, kind, 0, false)
		if err != nil {
			t.Fatalf("%s v1: %v", kind, err)
		}
		for _, stream := range []bool{false, true} {
			got, err := AnalyzeTrace(r2, kind, 0, stream)
			if err != nil {
				t.Fatalf("%s v2 stream=%v: %v", kind, stream, err)
			}
			assertStreamEqual(t, fmt.Sprintf("v2/%s/stream=%v", kind, stream), oracle, got)
		}
	}

	sizeOf := func(dir string, windows int) int64 {
		var total int64
		for i := 0; i < windows; i++ {
			fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("window_%04d.mbw", i)))
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		return total
	}
	v1 := sizeOf(dirV1, r1.Meta().Windows)
	v2 := sizeOf(dirV2, r2.Meta().Windows)
	t.Logf("trace-v1 %d B, trace-v2 %d B (%.2fx)", v1, v2, float64(v1)/float64(v2))
	if v2*2 >= v1 {
		t.Errorf("trace-v2 not compact: %d B vs v1's %d B", v2, v1)
	}
}
