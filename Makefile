GO ?= go

.PHONY: build test race vet lint bench chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs mblint, the repo-specific analyzer enforcing determinism,
# clock, RNG, and telemetry invariants (see README "Static analysis").
lint:
	$(GO) run ./cmd/mblint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# chaos runs the fault-injection soak under the race detector: generated
# fault schedules against the poll/recover pipeline plus the epoch-gated
# agent-restart scenario. Writes a FAULT_soak.json summary.
chaos:
	MBURST_FAULT_OUT="$(CURDIR)/FAULT_soak.json" $(GO) test -race -run 'TestChaosSoak|TestAgentRestartRecovery' -count=1 ./internal/fault

ci: lint
	./scripts/ci.sh
