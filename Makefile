GO ?= go

.PHONY: build test race vet lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs mblint, the repo-specific analyzer enforcing determinism,
# clock, RNG, and telemetry invariants (see README "Static analysis").
lint:
	$(GO) run ./cmd/mblint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

ci: lint
	./scripts/ci.sh
