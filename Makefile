GO ?= go

.PHONY: build test race vet lint bench chaos trace ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs mblint, the repo-specific analyzer enforcing determinism,
# clock, RNG, and telemetry invariants (see README "Static analysis").
lint:
	$(GO) run ./cmd/mblint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# chaos runs the fault-injection soak under the race detector: generated
# fault schedules against the poll/recover pipeline plus the epoch-gated
# agent-restart scenario. Writes a FAULT_soak.json summary.
chaos:
	MBURST_FAULT_OUT="$(CURDIR)/FAULT_soak.json" $(GO) test -race -run 'TestChaosSoak|TestAgentRestartRecovery' -count=1 ./internal/fault

# trace records a small faulted campaign with span tracing and renders
# the waterfall + critical path with mbtrace (see README "Pipeline
# tracing"). The dump is byte-identical for any -workers count.
trace:
	rm -rf /tmp/mburst-trace-demo
	$(GO) run ./cmd/mbsim -app web -racks 1 -windows 2 -window 20ms \
		-faults 'stuck@4ms+2ms,stall@12ms+5ms:500µs' \
		-out /tmp/mburst-trace-demo -trace /tmp/mburst-trace-demo.spans.json
	$(GO) run ./cmd/mbtrace -in /tmp/mburst-trace-demo.spans.json -n 3

ci: lint
	./scripts/ci.sh
