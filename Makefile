GO ?= go

.PHONY: build test race vet lint bench fuzz chaos crash fleet trace ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs mblint, the repo-specific analyzer enforcing determinism,
# clock, RNG, and telemetry invariants (see README "Static analysis").
lint:
	$(GO) run ./cmd/mblint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# fuzz exercises the parsers that face untrusted bytes: the wire decoder
# and the archive recovery scan (which must truncate any torn tail
# without panicking). FUZZTIME bounds each target (default 10s).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadBatch -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzTraceRecover -fuzztime=$(FUZZTIME) ./internal/trace

# chaos runs the fault-injection soak under the race detector: generated
# fault schedules against the poll/recover pipeline, the epoch-gated
# agent-restart scenario, and the collector-crash recovery soak. Writes
# a FAULT_soak.json summary.
chaos:
	MBURST_FAULT_OUT="$(CURDIR)/FAULT_soak.json" $(GO) test -race -run 'TestChaosSoak|TestAgentRestartRecovery|TestCollectorCrashSoak' -count=1 ./internal/fault

# crash runs only the collector-crash soak: seeded kill / torn-write /
# short-write schedules against the durable collection plane, asserting
# byte-exact recovery against an uninterrupted oracle.
crash:
	MBURST_FAULT_OUT="$(CURDIR)/FAULT_soak.json" $(GO) test -race -run 'TestCollectorCrashSoak' -count=1 -v ./internal/fault

# fleet runs the 1000-rack sharded campaign (8 collector shards
# in-process, byte-exactness verified against a single-collector
# oracle), then the fleet crash soak and the BENCH_fleet.json artifact
# (see README "Fleet-scale collection").
fleet:
	$(GO) run ./cmd/mbfleet -racks 1000 -shards 8 -oracle
	MBURST_FAULT_OUT="$(CURDIR)/FAULT_soak.json" $(GO) test -race -run 'TestFleetCrashSoak' -count=1 ./internal/core
	MBURST_FLEET_BENCH_OUT="$(CURDIR)/BENCH_fleet.json" $(GO) test -run TestFleetBenchArtifact -count=1 -v ./internal/core

# trace records a small faulted campaign with span tracing and renders
# the waterfall + critical path with mbtrace (see README "Pipeline
# tracing"). The dump is byte-identical for any -workers count.
trace:
	rm -rf /tmp/mburst-trace-demo
	$(GO) run ./cmd/mbsim -app web -racks 1 -windows 2 -window 20ms \
		-faults 'stuck@4ms+2ms,stall@12ms+5ms:500µs' \
		-out /tmp/mburst-trace-demo -trace /tmp/mburst-trace-demo.spans.json
	$(GO) run ./cmd/mbtrace -in /tmp/mburst-trace-demo.spans.json -n 3

ci: lint
	./scripts/ci.sh
