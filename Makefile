GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

ci:
	./scripts/ci.sh
