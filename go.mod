module mburst

go 1.22
